"""Registry-driven call-signature encoding (§3.3).

The encoder turns a traced call's ``(fname, args)`` into a flat hashable
*call signature* tuple ``(fid, v1, v2, ...)`` in registry parameter
order.  Every opaque value goes symbolic:

* communicators — globally agreed ids via :class:`CommIdSpace`
  (the §3.3.1 group-wide max algorithm, including the non-blocking
  ``MPI_Comm_idup`` case resolved at Wait/Test time);
* datatypes/groups — per-rank :class:`ObjectIdTable` pools;
* requests — per-signature pools (:class:`RequestIdAllocator`, §3.4.3);
* memory pointers — AVL-tree segment lookup → (segment id, displacement,
  device) with the stack-address fallback (§3.3.3);
* ranks and rank-correlated ints — relative encoding (§3.4.2);
* statuses — only ``(MPI_SOURCE, MPI_TAG)`` survive (§3.3.2).

Everything else (counts, flags, strings, index arrays from Testsome — the
non-determinism the paper insists on preserving) is stored verbatim.
"""

from __future__ import annotations

from typing import Any, Optional

from ..mpisim import constants as C
from ..mpisim import funcs as F
from ..mpisim.comm import Comm
from ..mpisim.datatypes import Datatype
from ..mpisim.group import Group
from ..mpisim.ops import Op
from ..mpisim.request import Request
from ..mpisim.status import Status
from .avl import IntervalTree
from .relative import encode_rank, encode_rankish
from .symbolic import IdPool, ObjectIdTable, RequestIdAllocator

# pointer encodings (first element of the tuple)
PTR_NULL = 0
PTR_HEAP = 1
PTR_STACK = 2
PTR_DEVICE = 3


class CommIdSpace:
    """Communicator symbolic ids, agreed group-wide (§3.3.1).

    In the real Pilgrim every member of a new communicator's group runs a
    max-allreduce over its locally-assigned ids and uses max+1.  Here the
    per-rank maxima live side by side in one object, so the agreement is
    a direct computation over the member ranks — same ids, same ordering
    guarantees (see DESIGN.md §1 on this substitution).
    """

    def __init__(self, nprocs: int):
        self._sym: dict[int, int] = {0: 0}   # world comm is id 0 everywhere
        self._max = [0] * nprocs

    def sym_for(self, comm: Comm) -> int:
        sym = self._sym.get(comm.cid)
        if sym is None:
            members = list(comm.group.ranks)
            if comm.remote_group is not None:
                # inter-communicator: the paper merges into a temporary
                # intra-communicator and runs the same algorithm over the
                # union of both groups
                members.extend(comm.remote_group.ranks)
            sym = 1 + max(self._max[r] for r in members)
            self._sym[comm.cid] = sym
            for r in members:
                if self._max[r] < sym:
                    self._max[r] = sym
        return sym

    @property
    def count(self) -> int:
        return len(self._sym)


class WinIdSpace:
    """Window symbolic ids, agreed group-wide like communicators —
    windows are collective objects, so every member must use the same id
    (same §3.3.1 algorithm, separate pool per object type)."""

    def __init__(self, nprocs: int):
        self._sym: dict[int, int] = {}
        self._max = [-1] * nprocs

    def sym_for(self, win) -> int:
        sym = self._sym.get(win.wid)
        if sym is None:
            members = list(win.comm.group.ranks)
            if win.comm.remote_group is not None:
                members.extend(win.comm.remote_group.ranks)
            sym = 1 + max(self._max[r] for r in members)
            self._sym[win.wid] = sym
            for r in members:
                if self._max[r] < sym:
                    self._max[r] = sym
        return sym


class MemoryTable:
    """Per-rank live-segment tracking with symbolic segment ids."""

    def __init__(self) -> None:
        self.tree = IntervalTree()
        self._pool = IdPool()
        self._stack_ids: dict[int, int] = {}
        self._next_stack = 0
        #: bumped on every live-segment mutation; signature caches keyed
        #: on raw addresses must invalidate when this changes
        self.epoch = 0

    # -- allocation interception ------------------------------------------------

    def on_alloc(self, addr: int, size: int, device: int = -1) -> int:
        sid = self._pool.acquire()
        self.tree.insert(addr, max(size, 1), (sid, device))
        self.epoch += 1
        return sid

    def on_free(self, addr: int) -> Optional[int]:
        node = self.tree.find_exact(addr)
        if node is None:
            return None
        sid, _dev = node.payload
        self.tree.remove(addr)
        self._pool.release(sid)
        self.epoch += 1
        return sid

    # -- pointer encoding ----------------------------------------------------------

    def encode_ptr(self, addr: int) -> tuple:
        if addr == 0:
            return (PTR_NULL,)
        node = self.tree.find_containing(addr)
        if node is not None:
            sid, dev = node.payload
            off = addr - node.addr
            if dev >= 0:
                return (PTR_DEVICE, dev, sid, off)
            return (PTR_HEAP, sid, off)
        # Stack (or otherwise untracked) address: first-touch id with a
        # conservatively assumed 1-byte extent, per §3.3.3.
        sid = self._stack_ids.get(addr)
        if sid is None:
            sid = self._next_stack
            self._stack_ids[addr] = sid
            self._next_stack += 1
        return (PTR_STACK, sid)


# -- signature-construction plans (shared, immutable per function) -----------------

#: completion calls that release request ids in ``_post_call``
_RELEASING = frozenset((
    "MPI_Wait", "MPI_Waitall", "MPI_Waitany", "MPI_Waitsome",
    "MPI_Test", "MPI_Testall", "MPI_Testany", "MPI_Testsome",
    "MPI_Request_free",
))

#: lifecycle calls that mutate symbolic tables and must both run
#: ``_post_call`` and invalidate the signature cache
_LIFECYCLE_EXTRA = frozenset(("MPI_Type_free", "MPI_Group_free"))

# static-key categories: how a raw argument is resolved into the hashable
# cache key.  Everything the *static* encoding depends on must flow into
# the key (object identities for handle-keyed tables, raw addresses for
# the memory table — the latter additionally guarded by MemoryTable.epoch).
_C_RAW = 0      # hashable scalar, stored verbatim
_C_PTR = 1      # raw address (memory-epoch guarded)
_C_CID = 2      # communicator -> cid
_C_WID = 3      # window -> wid
_C_HANDLE = 4   # datatype -> handle (handles are never reused)
_C_GID = 5      # group -> id(obj), pinned alive via _group_refs
_C_OP = 6       # op -> handle
_C_FLAG = 7     # coerced to bool
_C_TUPLE = 8    # int array -> tuple

_KEY_CATS = {
    F.K_PTR: _C_PTR,
    F.K_COMM: _C_CID, F.K_NEWCOMM: _C_CID,
    F.K_WIN: _C_WID, F.K_NEWWIN: _C_WID,
    F.K_DATATYPE: _C_HANDLE, F.K_NEWTYPE: _C_HANDLE,
    F.K_GROUP: _C_GID,
    F.K_OP: _C_OP,
    F.K_FLAG: _C_FLAG,
    F.K_INTV: _C_TUPLE, F.K_INDEXV: _C_TUPLE,
}

_KEY_EXPRS = {
    _C_RAW: "{g}",
    _C_PTR: "({g} or 0)",
    _C_CID: "(None if (v := {g}) is None else v.cid)",
    _C_WID: "(None if (v := {g}) is None else v.wid)",
    _C_HANDLE: "(None if (v := {g}) is None else v.handle)",
    _C_GID: "(None if (v := {g}) is None else _id(v))",
    _C_OP: "(None if (v := {g}) is None else "
           "(v.handle if isinstance(v, _Op) else v))",
    _C_FLAG: "(None if (v := {g}) is None else bool(v))",
    _C_TUPLE: "(None if (v := {g}) is None else tuple(v))",
}


def _compile_key_fn(fid: int, key_plan):
    """Compile a plan's static-key recipe into one flat tuple expression
    over ``args.get`` — the per-call interpretation loop
    (:meth:`PerRankEncoder._static_key`, kept as the reference
    implementation) costs more than the extraction itself.  The caller
    handles ``TypeError``/``AttributeError`` exactly like the loop's
    bail-to-``None``."""
    exprs = [str(fid)]
    for name, cat in key_plan:
        exprs.append(_KEY_EXPRS[cat].format(g=f"g({name!r})"))
    src = "def key_fn(g):\n    return (" + ", ".join(exprs) + ",)"
    ns = {"_id": id, "_Op": Op, "isinstance": isinstance,
          "bool": bool, "tuple": tuple}
    exec(compile(src, "<keyplan>", "exec"), ns)
    return ns["key_fn"]


class _CallPlan:
    """Precomputed per-function encoding plan: parameter walk order, the
    static-key extraction recipe, and the positions of the *dynamic*
    parameters (requests and statuses) that must be re-encoded on every
    call because they depend on per-call allocator/runtime state."""

    __slots__ = ("fname", "fid", "params", "key_plan", "dyn_status",
                 "dyn_req", "req_skip", "lifecycle", "cacheable", "is_any",
                 "idx_mode", "fast_req", "key_fn")

    def __init__(self, fname: str):
        spec = F.FUNCS[fname]
        self.fname = fname
        self.fid = spec.fid
        self.params = tuple((p.name, p.kind) for p in spec.params)
        key_plan = []
        dyn_status = []
        dyn_req = []
        for i, (name, kind) in enumerate(self.params):
            pos = i + 1  # parts[0] is the fid
            if kind == F.K_STATUS:
                dyn_status.append((pos, name, False))
            elif kind == F.K_STATUSV:
                dyn_status.append((pos, name, True))
            elif kind == F.K_REQUEST:
                dyn_req.append((pos, name, False))
            elif kind == F.K_REQUESTV:
                dyn_req.append((pos, name, True))
            else:
                key_plan.append((name, _KEY_CATS.get(kind, _C_RAW)))
        self.key_plan = tuple(key_plan)
        self.dyn_status = tuple(dyn_status)
        self.dyn_req = tuple(dyn_req)
        self.req_skip = frozenset(pos for pos, _, _ in dyn_req)
        self.lifecycle = fname in _RELEASING or fname in _LIFECYCLE_EXTRA
        # Type_free/Group_free clear the cache right after encoding, so
        # caching their signatures would be wasted work
        self.cacheable = fname not in _LIFECYCLE_EXTRA
        self.is_any = fname in ("MPI_Waitany", "MPI_Testany")
        # statuses[i] -> request-index mapping, precomputed so the hot
        # resolve path skips the per-call fname string compares
        if fname in ("MPI_Waitsome", "MPI_Testsome"):
            self.idx_mode = 1    # args["array_of_indices"]
        elif self.is_any:
            self.idx_mode = 2    # args["index"]
        else:
            self.idx_mode = 0    # aligned 1:1 (Waitall/Testall)
        # the dominant dynamic shape — one scalar request, no statuses
        # (Isend/Irecv/\*_init) — gets a dedicated resolve fast path
        self.fast_req = (self.dyn_req[0][0], self.dyn_req[0][1]) \
            if (not self.dyn_status and len(self.dyn_req) == 1
                and not self.dyn_req[0][2]) else None
        self.key_fn = _compile_key_fn(self.fid, self.key_plan)


_PLANS: dict[str, _CallPlan] = {}


def _plan_for(fname: str) -> _CallPlan:
    plan = _PLANS.get(fname)
    if plan is None:
        plan = _PLANS[fname] = _CallPlan(fname)
    return plan


#: entries beyond this are assumed to be churn (e.g. per-call varying
#: out-params); the whole cache is dropped rather than evicted piecemeal
_SIG_CACHE_CAP = 8192
#: per-entry bound on memoized dynamic-value combinations
_SIG_MEMO_CAP = 512


class PerRankEncoder:
    """One rank's symbolic state + signature construction.

    ``signature_cache=True`` (the default) memoizes signature
    construction per call site: the cache key is ``(fid, resolved static
    args)`` and the cached value is the finished signature (or, for calls
    carrying requests/statuses, a template whose dynamic slots are
    re-encoded per call).  Hits skip the registry walk, AVL pointer
    lookups, and relative-rank re-encoding.  The cache is a pure
    accelerator: it is invalidated on memory-table mutations and
    object-lifecycle calls, excluded from pickles, and byte-identical to
    the uncached path (property-tested across all workload families)."""

    def __init__(self, rank: int, comm_space: CommIdSpace, *,
                 win_space: Optional[WinIdSpace] = None,
                 relative_ranks: bool = True,
                 per_signature_request_pools: bool = True,
                 signature_cache: bool = True):
        self.rank = rank
        self.comm_space = comm_space
        self.win_space = win_space
        self.relative_ranks = relative_ranks
        self.per_signature_request_pools = per_signature_request_pools
        self.type_ids = ObjectIdTable()
        self.group_ids = ObjectIdTable()
        self._group_refs: dict[int, Group] = {}
        self.requests = RequestIdAllocator()
        self.memory = MemoryTable()
        #: (fid, static args) -> signature/template; None = disabled
        self._sig_cache: Optional[dict] = {} if signature_cache else None
        self._mem_epoch = 0

    # -- helpers per kind ------------------------------------------------------------

    def _enc_comm(self, comm: Optional[Comm]) -> int:
        if comm is None:
            return -1  # MPI_COMM_NULL
        return self.comm_space.sym_for(comm)

    def _enc_datatype(self, dt: Optional[Datatype]) -> int:
        if dt is None:
            return -(1 << 20)  # MPI_DATATYPE_NULL
        if dt.handle < 0:
            return dt.handle  # builtins: stable negative handles
        return self.type_ids.lookup_or_assign(dt.handle)

    def _enc_group(self, group: Optional[Group]) -> int:
        if group is None:
            return -1
        key = id(group)
        self._group_refs[key] = group
        return self.group_ids.lookup_or_assign(key)

    def _enc_request(self, req: Optional[Request],
                     creation_sig: Optional[tuple]) -> Any:
        if req is None:
            return None
        key = id(req)
        # hot path: reach straight into the allocator's live map (the
        # bound-method lookup() costs a call frame per request)
        sym = self.requests._active.get(key)
        if sym is not None:
            return sym
        if not req.persistent and (req.consumed or req.freed):
            # a request already consumed by an earlier completion call:
            # the user's handle would be MPI_REQUEST_NULL by now
            return None
        if creation_sig is None:
            # a request we never saw created (shouldn't happen; keep a
            # distinguishable encoding rather than crash)
            creation_sig = ("?",)
        if not self.per_signature_request_pools:
            creation_sig = ("*",)  # ablation: one global pool
        return self.requests.on_create(key, creation_sig, ref=req)

    def _enc_status(self, st: Optional[Status], ctx_rank: int) -> Any:
        if st is None:
            return None  # MPI_STATUS_IGNORE
        src = st.MPI_SOURCE
        return (encode_rank(src, ctx_rank, enabled=self.relative_ranks),
                st.MPI_TAG)

    # -- main entry --------------------------------------------------------------------

    def encode_call(self, fname: str, args: dict[str, Any]) -> tuple:
        plan = _PLANS.get(fname)
        if plan is None:
            plan = _plan_for(fname)
        cache = self._sig_cache
        if cache is not None and plan.cacheable:
            mem_epoch = self.memory.epoch
            if mem_epoch != self._mem_epoch:
                # heap segments changed: raw addresses may now resolve to
                # different (segment, displacement) encodings
                cache.clear()
                self._mem_epoch = mem_epoch
            try:
                key = plan.key_fn(args.get)
                entry = cache.get(key)
            except (TypeError, AttributeError):
                # unkeyable argument shape or unhashable key: bypass
                entry = None
                key = None
            if key is not None:
                if entry is not None:
                    if entry[3] is None:   # fully static signature
                        sig = entry[0]
                    else:
                        sig = self._resolve_dynamic(plan, entry, args)
                    if plan.lifecycle:
                        self._post_call(fname, args)
                    return sig
                sig, parts, ctx_rank, base = self._encode_walk(plan, args)
                if len(cache) >= _SIG_CACHE_CAP:
                    cache.clear()
                if plan.dyn_status or plan.dyn_req:
                    template = list(parts)
                    for pos, _n, _v in plan.dyn_status:
                        template[pos] = None
                    for pos, _n, _v in plan.dyn_req:
                        template[pos] = None
                    # the request-creation base is static only when no
                    # per-call status values feed into it
                    cache[key] = (template, ctx_rank,
                                  base if not plan.dyn_status else None, {})
                else:
                    cache[key] = (sig, ctx_rank, None, None)
                if plan.lifecycle:
                    self._post_call(fname, args)
                return sig
        sig, _parts, _ctx, _base = self._encode_walk(plan, args)
        if plan.lifecycle:
            self._post_call(fname, args)
        return sig

    def _static_key(self, plan: _CallPlan, args: dict[str, Any]):
        """The cache key: fid plus each static argument resolved to the
        stable primitive its encoding depends on.  Returns None when an
        argument cannot be keyed (unknown shape), forcing the slow path."""
        key: list[Any] = [plan.fid]
        append = key.append
        get = args.get
        try:
            for name, cat in plan.key_plan:
                v = get(name)
                if cat == 0:
                    append(v)
                elif cat == 1:
                    append(v or 0)
                elif v is None:
                    append(None)
                elif cat == 2:
                    append(v.cid)
                elif cat == 3:
                    append(v.wid)
                elif cat == 4:
                    append(v.handle)
                elif cat == 5:
                    append(id(v))
                elif cat == 6:
                    append(v.handle if isinstance(v, Op) else v)
                elif cat == 7:
                    append(bool(v))
                else:
                    append(tuple(v))
        except (TypeError, AttributeError):
            return None
        return tuple(key)

    def _resolve_dynamic(self, plan: _CallPlan, entry: tuple,
                         args: dict[str, Any]) -> tuple:
        """Cache hit for a call with request/status parameters: copy the
        static template and re-encode only the dynamic slots (whose
        values depend on per-call allocator and runtime state)."""
        template, ctx_rank, static_base, memo = entry
        fast = plan.fast_req
        if fast is not None:
            # one scalar request, no statuses: the creation base is
            # static by construction and the encoding is the memo key
            enc = self._enc_request(args.get(fast[1]), static_base)
            sig = memo.get(enc)
            if sig is None:
                parts = template.copy()
                parts[fast[0]] = enc
                sig = tuple(parts)
                if len(memo) >= _SIG_MEMO_CAP:
                    memo.clear()
                memo[enc] = sig
            return sig
        get = args.get
        parts = template.copy()
        vals: list[Any] = []
        if plan.dyn_status:
            req_list = get("array_of_requests")
            enc_status = self._enc_status
            status_ctx = self._status_ctx
            for pos, name, is_vec in plan.dyn_status:
                v = get(name)
                if is_vec:
                    if v is None:
                        enc = None
                    elif plan.idx_mode == 0:
                        # Waitall/Testall: statuses align 1:1 with requests
                        enc = self._enc_status_vec(v, req_list, args,
                                                   ctx_rank)
                    else:
                        idxs = self._completed_indices(plan.fname, args,
                                                       len(v))
                        enc = tuple([
                            enc_status(st, status_ctx(
                                args, req_list, ctx_rank,
                                idxs[i] if idxs is not None and i < len(idxs)
                                else None))
                            for i, st in enumerate(v)])
                else:
                    ridx = None
                    if plan.is_any:
                        idx = get("index")
                        if isinstance(idx, int) and idx >= 0:
                            ridx = idx
                    enc = enc_status(v, status_ctx(
                        args, req_list, ctx_rank, ridx))
                parts[pos] = enc
                vals.append(enc)
        if plan.dyn_req:
            base = static_base
            if base is None:
                skip = plan.req_skip
                base = tuple(x for i, x in enumerate(parts)
                             if i not in skip)
            enc_request = self._enc_request
            for pos, name, is_vec in plan.dyn_req:
                v = get(name)
                if is_vec:
                    enc = tuple([enc_request(r, base) for r in v]) \
                        if v else ()
                else:
                    enc = enc_request(v, base)
                parts[pos] = enc
                vals.append(enc)
        memo_key = tuple(vals)
        sig = memo.get(memo_key)
        if sig is None:
            sig = tuple(parts)
            if len(memo) >= _SIG_MEMO_CAP:
                memo.clear()
            memo[memo_key] = sig
        return sig

    def encode_batch(self, fnames, argses, n: int,
                     out: Optional[list] = None) -> list:
        """Encode *n* calls from columns, writing signatures into *out*
        (preallocated by the caller when given; first *n* slots).

        Byte-identical to *n* :meth:`encode_call` invocations in order.
        The signature-cache hit path — the overwhelmingly common case —
        is inlined with its lookups hoisted out of the loop; anything
        else (plan miss, cold cache entry, unhashable key, memory-epoch
        change) falls back to :meth:`encode_call` for that element, which
        performs the identical slow path including cache fills.
        """
        if out is None:
            out = [None] * n
        plans = _PLANS
        cache = self._sig_cache
        encode_call = self.encode_call
        resolve_dynamic = self._resolve_dynamic
        post_call = self._post_call
        mem = self.memory
        for i in range(n):
            fname = fnames[i]
            args = argses[i]
            plan = plans.get(fname)
            if plan is None or cache is None or not plan.cacheable \
                    or mem.epoch != self._mem_epoch:
                out[i] = encode_call(fname, args)
                continue
            try:
                entry = cache.get(plan.key_fn(args.get))
            except (TypeError, AttributeError):
                # unkeyable argument shape or unhashable key: bypass
                entry = None
            if entry is None:
                out[i] = encode_call(fname, args)
                continue
            if entry[3] is None:   # fully static signature
                sig = entry[0]
            else:
                sig = resolve_dynamic(plan, entry, args)
            if plan.lifecycle:
                post_call(fname, args)
            out[i] = sig
        return out

    def reset_cache(self) -> None:
        """Drop the signature cache (called at shard-freeze time; the
        cache never outlives the tracing phase it accelerated)."""
        if self._sig_cache is not None:
            self._sig_cache = {}
        self._mem_epoch = self.memory.epoch

    @property
    def cache_enabled(self) -> bool:
        return self._sig_cache is not None

    @property
    def cache_size(self) -> int:
        return len(self._sig_cache) if self._sig_cache is not None else 0

    def __getstate__(self) -> dict:
        # the signature cache is a pure accelerator: shards and pickled
        # compressors must never carry it across process boundaries
        state = self.__dict__.copy()
        if state.get("_sig_cache") is not None:
            state["_sig_cache"] = {}
        state["_mem_epoch"] = -1   # force a resync on first use
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def _encode_walk(self, plan: _CallPlan, args: dict[str, Any]):
        """The full (uncached) signature construction walk.  Returns the
        signature plus the raw parts, context rank, and request-creation
        base the caller needs to build a cache entry."""
        fname = plan.fname
        fid = plan.fid
        param_info = plan.params
        my_rank = self.rank
        rel = self.relative_ranks
        # caller's rank within the call's communicator, for relative ranks
        comm = args.get("comm") or args.get("comm_old") \
            or args.get("local_comm") or args.get("intercomm")
        ctx_rank = my_rank
        if isinstance(comm, Comm):
            cr = comm.group.rank_of(my_rank)
            if cr == C.UNDEFINED and comm.remote_group is not None:
                cr = comm.remote_group.rank_of(my_rank)
            if cr != C.UNDEFINED:
                ctx_rank = cr
        # completion calls: per-status context from the matching request
        req_list = args.get("array_of_requests")

        parts: list[Any] = [fid]
        deferred_requests: list[tuple[int, Any]] = []
        for name, kind in param_info:
            v = args.get(name)
            if kind == F.K_COUNT or kind == F.K_INT:
                parts.append(v)
            elif kind == F.K_PTR:
                parts.append(self.memory.encode_ptr(v or 0))
            elif kind == F.K_COMM or kind == F.K_NEWCOMM:
                parts.append(self._enc_comm(v))
            elif kind == F.K_WIN or kind == F.K_NEWWIN:
                parts.append(-1 if v is None
                             else self.win_space.sym_for(v))
            elif kind == F.K_DATATYPE or kind == F.K_NEWTYPE:
                parts.append(self._enc_datatype(v))
            elif kind == F.K_GROUP:
                parts.append(self._enc_group(v))
            elif kind == F.K_RANK:
                parts.append(encode_rank(v, ctx_rank, enabled=rel))
            elif kind in (F.K_ROOT, F.K_TAG, F.K_COLOR, F.K_KEY):
                # usually-constant rank-correlated values: relative only on
                # exact match (a constant root=0 must stay absolute)
                parts.append(encode_rankish(v, ctx_rank, enabled=rel))
            elif kind == F.K_REQUEST:
                # creation signature excludes the request itself; defer
                deferred_requests.append((len(parts), v))
                parts.append(None)
            elif kind == F.K_REQUESTV:
                deferred_requests.append((len(parts), list(v or ())))
                parts.append(None)
            elif kind == F.K_STATUS:
                # Waitany/Testany: the single status describes request
                # [index]; other calls carry their request (or comm) inline
                ridx = None
                if fname in ("MPI_Waitany", "MPI_Testany"):
                    idx = args.get("index")
                    if isinstance(idx, int) and idx >= 0:
                        ridx = idx
                parts.append(self._enc_status(v, self._status_ctx(
                    args, req_list, ctx_rank, ridx)))
            elif kind == F.K_STATUSV:
                if v is None:
                    parts.append(None)
                else:
                    idxs = self._completed_indices(fname, args, len(v))
                    parts.append(tuple(
                        self._enc_status(st, self._status_ctx(
                            args, req_list, ctx_rank,
                            idxs[i] if idxs is not None and i < len(idxs)
                            else None))
                        for i, st in enumerate(v)))
            elif kind == F.K_OP:
                parts.append(v.handle if isinstance(v, Op) else v)
            elif kind in (F.K_INTV, F.K_INDEXV):
                if v is not None and rel and name == "coords" \
                        and isinstance(comm, Comm) and comm.topo is not None:
                    # Cartesian coordinates are rank-derived: store them
                    # relative to the caller's own coordinates so identical
                    # grid code yields identical signatures on every rank
                    mine = comm.topo.coords_of(ctx_rank)
                    parts.append(tuple(x - m for x, m in zip(v, mine)))
                else:
                    parts.append(tuple(v) if v is not None else None)
            elif kind == F.K_FLAG:
                parts.append(bool(v))
            else:  # K_COUNT, K_INT, K_STR and anything scalar
                parts.append(v)

        # resolve deferred request encodings with the creation signature
        base = None
        if deferred_requests:
            if len(deferred_requests) == 1:
                pos = deferred_requests[0][0]
                base = tuple(parts[:pos]) + tuple(parts[pos + 1:])
            else:
                skip = {pos for pos, _ in deferred_requests}
                base = tuple(x for i, x in enumerate(parts)
                             if i not in skip)
            for pos, v in deferred_requests:
                if isinstance(v, list):
                    parts[pos] = tuple(self._enc_request(r, base) for r in v)
                else:
                    parts[pos] = self._enc_request(v, base)

        return tuple(parts), parts, ctx_rank, base

    def _enc_status_vec(self, statuses, req_list, args,
                        ctx_rank: int) -> tuple:
        """Aligned vector statuses (Waitall/Testall): element-for-element
        equivalent to ``_enc_status(st, _status_ctx(args, req_list,
        ctx_rank, i))``, with the cid → caller-rank resolution memoized
        across elements (deterministic for the call's duration)."""
        rel = self.relative_ranks
        my_rank = self.rank
        resolver = self._comm_resolver
        out: list = []
        append = out.append
        if not req_list:
            # no request array: every element resolves against the same
            # scalar "request" arg (or none), so the context is uniform
            ctx = self._status_ctx(args, req_list, ctx_rank, 0)
            for st in statuses:
                append(None if st is None else
                       (encode_rank(st.MPI_SOURCE, ctx, enabled=rel),
                        st.MPI_TAG))
            return tuple(out)
        nreq = len(req_list)
        cid_ctx: dict[int, int] = {}
        for i, st in enumerate(statuses):
            if st is None:
                append(None)
                continue
            req = req_list[i] if i < nreq else None
            ctx = ctx_rank
            if isinstance(req, Request) and req.comm_cid >= 0:
                cid = req.comm_cid
                got = cid_ctx.get(cid)
                if got is None:
                    got = ctx_rank
                    comm = resolver(cid)
                    if comm is not None:
                        cr = comm.group.rank_of(my_rank)
                        if cr != C.UNDEFINED:
                            got = cr
                    cid_ctx[cid] = got
                ctx = got
            append((encode_rank(st.MPI_SOURCE, ctx, enabled=rel),
                    st.MPI_TAG))
        return tuple(out)

    def _status_ctx(self, args, req_list, default_ctx: int,
                    req_index: Optional[int]) -> int:
        """Caller's comm rank in the communicator relevant to a status."""
        req = None
        if req_index is not None and req_list:
            if 0 <= req_index < len(req_list):
                req = req_list[req_index]
        elif args.get("request") is not None:
            req = args["request"]
        if isinstance(req, Request) and req.comm_cid >= 0:
            comm = self._comm_resolver(req.comm_cid)
            if comm is not None:
                cr = comm.group.rank_of(self.rank)
                if cr != C.UNDEFINED:
                    return cr
        return default_ctx

    @staticmethod
    def _completed_indices(fname: str, args: dict,
                           nstatuses: int) -> Optional[list[int]]:
        """Map statuses[i] to the request index it describes."""
        if fname in ("MPI_Waitsome", "MPI_Testsome"):
            idxs = args.get("array_of_indices")
            return list(idxs) if idxs is not None else None
        if fname in ("MPI_Waitany", "MPI_Testany"):
            idx = args.get("index")
            return [idx] if isinstance(idx, int) and idx >= 0 else None
        return list(range(nstatuses))  # Waitall/Testall align 1:1

    # wired by the tracer: cid -> Comm (default: unresolved)
    @staticmethod
    def _comm_resolver(cid: int):
        return None

    def set_comm_resolver(self, fn) -> None:
        """Install a cid → Comm lookup (plain callable, not bound)."""
        self._comm_resolver = fn

    # -- lifecycle ------------------------------------------------------------------------

    #: kept as a class attribute for introspection/back-compat; the
    #: authoritative set lives at module level so _CallPlan can use it
    _RELEASING = _RELEASING

    def _release_request(self, req: Request) -> None:
        """Release one completed/freed non-persistent request's id."""
        if req.persistent:
            return
        if req.consumed or req.freed:
            sym = self.requests.on_release(id(req))
            if sym is not None and req.kind == "comm_idup" \
                    and isinstance(req.value, Comm):
                # §3.3.1: the symbolic id of an idup'ed communicator is
                # agreed when the completing Wait/Test observes it
                self.comm_space.sym_for(req.value)

    def _post_call(self, fname: str, args: dict[str, Any]) -> None:
        if fname in self._RELEASING:
            req = args.get("request")
            if req is not None:
                self._release_request(req)
            arr = args.get("array_of_requests")
            if arr:
                release = self._release_request
                for req in arr:
                    if req is not None:
                        release(req)
            return
        if fname == "MPI_Type_free":
            dt = args.get("datatype")
            if dt is not None and dt.handle >= 0 \
                    and self.type_ids.lookup(dt.handle) is not None:
                self.type_ids.release(dt.handle)
            if self._sig_cache:
                # released symbolic ids may be re-handed to new handles;
                # cached signatures must not outlive the assignment
                self._sig_cache.clear()
            return
        if fname == "MPI_Group_free":
            grp = args.get("group")
            key = id(grp)
            if grp is not None and self.group_ids.lookup(key) is not None:
                self.group_ids.release(key)
                self._group_refs.pop(key, None)
            if self._sig_cache:
                # the freed group may be garbage-collected and its id()
                # reused by a new Group object
                self._sig_cache.clear()
            return
