"""Call Signature Tables (§2.1, §3.5.1).

A CST maps call signatures (the flat tuples built by
:mod:`repro.core.encoder`) to dense terminal symbols used in the CFG.
Alongside every entry it aggregates timing statistics — Pilgrim's default
timing mode keeps only the per-signature call count and mean duration
(§3.2), which adds no new grammar symbols.

:func:`merge_csts` implements the inter-process compression: pairwise
merges in ceil(log2 P) phases, then a global renumbering table per rank
so each process can rewrite its grammar's terminals (Fig 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .errors import CorruptTraceError
from .packing import Reader, read_value, write_uvarint, write_value


class CST:
    """One process's signature → terminal table with timing stats.

    ``intern`` has a two-level fast path for the hot per-call loop, both
    keyed on object *identity* so no (potentially large, nested)
    signature tuple is hashed: a last-hit slot for the just-seen
    signature, and an ``id()``-keyed map valid because every entry pins a
    strong reference to its signature object (a live object's ``id`` is
    never reused).  The memoizing encoder returns canonical signature
    objects, so repeating call sites hit these paths; the fallback is the
    ordinary hash probe, byte-identical either way.  ``fast_path=False``
    disables both levels (for the cache-ablation property tests)."""

    __slots__ = ("_table", "sigs", "counts", "dur_sums",
                 "_fast", "_last_sig", "_last_term", "_by_id")

    #: id-map entries beyond this are churn from non-canonical callers;
    #: drop the map rather than track eviction order
    _BY_ID_CAP = 1 << 16

    def __init__(self, fast_path: bool = True) -> None:
        self._table: dict[tuple, int] = {}
        self.sigs: list[tuple] = []
        self.counts: list[int] = []
        self.dur_sums: list[float] = []
        self._fast = fast_path
        self._last_sig: Optional[tuple] = None
        self._last_term = -1
        #: id(sig) -> (sig, term); the stored sig both verifies identity
        #: and keeps the object alive so the id stays unambiguous
        self._by_id: dict[int, tuple] = {}

    def intern(self, sig: tuple, duration: float) -> int:
        """Terminal symbol of *sig*, creating an entry on first sight."""
        if self._fast:
            if sig is self._last_sig:
                term = self._last_term
                self.counts[term] += 1
                self.dur_sums[term] += duration
                return term
            hit = self._by_id.get(id(sig))
            if hit is not None and hit[0] is sig:
                term = hit[1]
                self.counts[term] += 1
                self.dur_sums[term] += duration
                self._last_sig = sig
                self._last_term = term
                return term
        term = self._table.get(sig)
        if term is None:
            term = len(self.sigs)
            self._table[sig] = term
            self.sigs.append(sig)
            self.counts.append(1)
            self.dur_sums.append(duration)
        else:
            self.counts[term] += 1
            self.dur_sums[term] += duration
        if self._fast:
            self._last_sig = sig
            self._last_term = term
            by_id = self._by_id
            if len(by_id) >= self._BY_ID_CAP:
                by_id.clear()
            by_id[id(sig)] = (sig, term)
        return term

    def intern_batch(self, sigs: list, durations, n: int,
                     out: Optional[list[int]] = None) -> list[int]:
        """Resolve *n* signatures to terminals in one call.

        Byte-identical to *n* :meth:`intern` calls (same table growth
        order, same counts/duration sums) with the per-call attribute
        lookups hoisted out of the loop.  *sigs* and *durations* are
        columns (any indexable; only the first *n* slots are read).
        Writes terminals into *out* when given (first *n* slots,
        preallocated by the caller) and returns it, else a fresh list.
        """
        if out is None:
            out = [0] * n
        table = self._table
        all_sigs = self.sigs
        counts = self.counts
        dur_sums = self.dur_sums
        fast = self._fast
        by_id = self._by_id if fast else None
        last_sig = self._last_sig
        last_term = self._last_term
        for i in range(n):
            sig = sigs[i]
            duration = durations[i]
            if fast:
                if sig is last_sig:
                    term = last_term
                    counts[term] += 1
                    dur_sums[term] += duration
                    out[i] = term
                    continue
                hit = by_id.get(id(sig))
                if hit is not None and hit[0] is sig:
                    term = hit[1]
                    counts[term] += 1
                    dur_sums[term] += duration
                    last_sig = sig
                    last_term = term
                    out[i] = term
                    continue
            term = table.get(sig)
            if term is None:
                term = len(all_sigs)
                table[sig] = term
                all_sigs.append(sig)
                counts.append(1)
                dur_sums.append(duration)
            else:
                counts[term] += 1
                dur_sums[term] += duration
            if fast:
                last_sig = sig
                last_term = term
                if len(by_id) >= self._BY_ID_CAP:
                    by_id.clear()
                by_id[id(sig)] = (sig, term)
            out[i] = term
        if fast:
            self._last_sig = last_sig
            self._last_term = last_term
        return out

    def reset_cache(self) -> None:
        """Drop the identity fast-path state (shard freeze time); the
        table itself — the actual CST — is untouched."""
        self._last_sig = None
        self._last_term = -1
        self._by_id = {}

    def __getstate__(self) -> dict:
        # fast-path state is a pure accelerator keyed on object ids,
        # which are meaningless in another process: never pickle it
        return {"_table": self._table, "sigs": self.sigs,
                "counts": self.counts, "dur_sums": self.dur_sums,
                "_fast": self._fast}

    def __setstate__(self, state: dict) -> None:
        self._table = state["_table"]
        self.sigs = state["sigs"]
        self.counts = state["counts"]
        self.dur_sums = state["dur_sums"]
        self._fast = state.get("_fast", True)
        self._last_sig = None
        self._last_term = -1
        self._by_id = {}

    def lookup(self, sig: tuple) -> Optional[int]:
        return self._table.get(sig)

    def __len__(self) -> int:
        return len(self.sigs)

    def __contains__(self, sig: tuple) -> bool:
        return sig in self._table

    def avg_duration(self, term: int) -> float:
        n = self.counts[term]
        return self.dur_sums[term] / n if n else 0.0


@dataclass
class MergedCST:
    """Globally unique signatures after inter-process compression."""

    sigs: list[tuple]
    counts: list[int]
    dur_sums: list[float]
    #: per-rank terminal renumbering: remaps[r][local_term] == global_term
    remaps: list[list[int]]

    def __len__(self) -> int:
        return len(self.sigs)

    # -- serialization -----------------------------------------------------------

    def write_to(self, out: bytearray) -> None:
        write_uvarint(out, len(self.sigs))
        for sig, count, dur in zip(self.sigs, self.counts, self.dur_sums):
            write_value(out, sig)
            write_uvarint(out, count)
            write_value(out, dur)

    @classmethod
    def read_from(cls, r: Reader) -> "MergedCST":
        n = r.read_uvarint()
        if n > r.remaining():
            raise CorruptTraceError(
                f"CST claims {n} signatures but only {r.remaining()} "
                f"bytes remain")
        sigs, counts, durs = [], [], []
        for i in range(n):
            sig = read_value(r)
            if not isinstance(sig, tuple):
                raise CorruptTraceError(
                    f"CST entry {i} is a {type(sig).__name__}, "
                    f"not a signature tuple")
            sigs.append(sig)
            counts.append(r.read_uvarint())
            dur = read_value(r)
            if isinstance(dur, bool) or not isinstance(dur, (int, float)):
                raise CorruptTraceError(
                    f"CST entry {i} duration is {type(dur).__name__}, "
                    f"not a number")
            durs.append(dur)
        return cls(sigs, counts, durs, remaps=[])

    def size_bytes(self) -> int:
        out = bytearray()
        self.write_to(out)
        return len(out)


def merge_csts(csts: list[CST]) -> MergedCST:
    """Inter-process CST compression (§3.5.1).

    Performs the paper's ceil(log2 P) phases of pairwise merges (the work
    is real, so callers can time it), then derives the per-rank terminal
    remap tables from the final global numbering.
    """
    nprocs = len(csts)
    # working copies: sig -> (count, dur_sum); global numbering grows as
    # novel signatures are appended during merges, preserving the lower
    # partner's numbering exactly as in Fig 3
    partial: list[Optional[dict[tuple, int]]] = []
    order: list[Optional[list[tuple]]] = []
    stats: dict[tuple, tuple[int, float]] = {}
    for cst in csts:
        d = dict(cst._table)
        partial.append(d)
        order.append(list(cst.sigs))
        for sig, c, s in zip(cst.sigs, cst.counts, cst.dur_sums):
            got = stats.get(sig)
            stats[sig] = (c, s) if got is None else (got[0] + c, got[1] + s)

    stride = 1
    while stride < nprocs:
        for left in range(0, nprocs, 2 * stride):
            right = left + stride
            if right >= nprocs:
                continue
            ltab, lorder = partial[left], order[left]
            for sig in order[right]:
                if sig not in ltab:
                    ltab[sig] = len(lorder)
                    lorder.append(sig)
            partial[right] = None
            order[right] = None
        stride *= 2

    final_order = order[0] if nprocs else []
    final_index = partial[0] if nprocs else {}
    remaps = []
    for cst in csts:
        remaps.append([final_index[sig] for sig in cst.sigs])
    return MergedCST(
        sigs=list(final_order),
        counts=[stats[s][0] for s in final_order],
        dur_sums=[stats[s][1] for s in final_order],
        remaps=remaps,
    )
