"""Run-length Sequitur — the paper's "optimized Sequitur" (§2.2).

Classic Sequitur (Nevill-Manning & Witten) maintains two invariants while
consuming one symbol at a time:

* **P1 (digram uniqueness)** — no pair of adjacent symbols appears more
  than once in the grammar; a repeated digram becomes a rule.
* **P2 (rule utility)** — every rule is referenced at least twice;
  single-use rules are inlined.

The optimization adopted by Pilgrim (following Dorier et al.'s Omnisc'IO)
attaches a *repetition exponent* to every symbol: ``A -> B^i B^j`` is
collapsed to ``A -> B^(i+j)``.  A loop of N identical iterations then
compresses to O(1) tokens instead of the O(log N) rule chain plain
Sequitur builds — the paper's constant-space claim for regular codes
rides on this.  With exponents, a "symbol" for digram purposes is the
token ``(value, exp)``; P1 is enforced over tokens.

Terminals are non-negative ints; rule references are negative ints
(``-1`` is the start rule).  The expanded string is recovered by
:meth:`Sequitur.expand` and, for serialized grammars, by
:func:`repro.core.grammar.expand_serialized`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

#: digram-index key: packed int in the common range, tuple fallback outside
DigramKey = Union[int, tuple[int, int, int, int]]

_PACK_LIM = 1 << 32   # exponents must stay below this for the packed form
_PACK_OFF = 1 << 31   # value bias so rule refs (negative) pack too


def _digram_key(v1: int, e1: int, v2: int, e2: int) -> DigramKey:
    """Flat-dict key for the token digram ``(v1^e1, v2^e2)``.

    The common case packs both tokens into one int — ``(a << 32) | b``
    per token, tokens concatenated — which hashes and compares faster
    than a 4-tuple and allocates no container.  Out-of-range fields
    (exponents >= 2**32, values outside +/-2**31) fall back to the tuple
    form; int and tuple keys can never collide in the same dict.
    """
    if e1 < _PACK_LIM and e2 < _PACK_LIM \
            and -_PACK_OFF <= v1 < _PACK_OFF and -_PACK_OFF <= v2 < _PACK_OFF:
        return ((((v1 + _PACK_OFF) << 32) | e1) << 64) \
            | (((v2 + _PACK_OFF) << 32) | e2)
    return (v1, e1, v2, e2)


class Symbol:
    """A doubly-linked token ``value^exp`` inside a rule's RHS."""

    __slots__ = ("value", "exp", "prev", "next", "rule_of")

    def __init__(self, value: int, exp: int = 1):
        self.value = value
        self.exp = exp
        self.prev: Optional["Symbol"] = None
        self.next: Optional["Symbol"] = None
        #: for guard nodes only: the owning rule (used to find rule heads)
        self.rule_of: Optional["Rule"] = None

    @property
    def is_guard(self) -> bool:
        return self.rule_of is not None

    @property
    def is_rule_ref(self) -> bool:
        return self.value < 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_guard:
            return f"<guard of R{self.rule_of.rid}>"
        e = f"^{self.exp}" if self.exp != 1 else ""
        return f"<{self.value}{e}>"


class Rule:
    """A production: circular doubly-linked RHS with a guard node."""

    __slots__ = ("rid", "guard", "refcount")

    def __init__(self, rid: int):
        self.rid = rid                      # negative int, -1 is start
        self.guard = Symbol(0)
        self.guard.rule_of = self
        self.guard.prev = self.guard
        self.guard.next = self.guard
        self.refcount = 0

    @property
    def first(self) -> Symbol:
        return self.guard.next

    @property
    def last(self) -> Symbol:
        return self.guard.prev

    @property
    def empty(self) -> bool:
        return self.guard.next is self.guard

    def tokens(self) -> Iterator[tuple[int, int]]:
        s = self.guard.next
        while s.rule_of is None:   # only guard nodes carry rule_of
            yield (s.value, s.exp)
            s = s.next

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = " ".join(f"{v}" + (f"^{e}" if e != 1 else "")
                        for v, e in self.tokens())
        return f"R{self.rid} -> {body}"


class Sequitur:
    """Incremental run-length Sequitur over non-negative int terminals."""

    START_RID = -1

    def __init__(self, loop_detection: bool = True) -> None:
        self.rules: dict[int, Rule] = {}
        self._next_rid = self.START_RID
        #: digram index: packed token pair (see :func:`_digram_key`) ->
        #: left Symbol of the occurrence
        self._digrams: dict[DigramKey, Symbol] = {}
        #: rules whose refcount dropped to 1, pending a P2 utility pass
        self._pending_underused: list[Rule] = []
        #: rule value -> set of referencing symbols (for O(1) inlining)
        self._users: dict[int, set] = {}
        #: total number of appended symbols (expanded length)
        self.n_input = 0
        #: the paper's "loop detection" optimization: when the grammar tail
        #: is X^k, incoming symbols are matched against X's expansion and a
        #: full match bumps k instead of replaying the Sequitur machinery
        self.loop_detection = loop_detection
        self._predict: Optional[list[int]] = None
        self._predict_pos = 0
        # rule expansions are invariant under Sequitur restructurings and
        # rule ids are never reused, so this cache is valid forever
        self._expand_cache: dict[int, list[int]] = {}
        self.start = self._new_rule()

    # -- low-level list/index primitives --------------------------------------------

    def _new_rule(self) -> Rule:
        rid = self._next_rid
        self._next_rid -= 1
        rule = Rule(rid)
        self.rules[rid] = rule
        self._users[rid] = set()
        return rule

    @staticmethod
    def _key(left: Symbol) -> DigramKey:
        right = left.next
        return _digram_key(left.value, left.exp, right.value, right.exp)

    def _delete_digram_at(self, left: Symbol) -> None:
        """Forget the digram starting at *left*, if indexed as such."""
        if left is None or left.rule_of is not None:
            return
        right = left.next
        if right.rule_of is not None:
            return
        key = _digram_key(left.value, left.exp, right.value, right.exp)
        digrams = self._digrams
        if digrams.get(key) is left:
            del digrams[key]

    def _link_after(self, anchor: Symbol, sym: Symbol) -> None:
        sym.prev = anchor
        sym.next = anchor.next
        anchor.next.prev = sym
        anchor.next = sym
        if sym.value < 0:          # rule reference (guards never get here)
            rule = self.rules[sym.value]
            rule.refcount += 1
            self._users[sym.value].add(sym)

    def _unlink(self, sym: Symbol) -> None:
        """Remove *sym* from its list, cleaning adjacent digram entries."""
        self._delete_digram_at(sym.prev)
        self._delete_digram_at(sym)
        sym.prev.next = sym.next
        sym.next.prev = sym.prev
        if sym.value < 0:
            rule = self.rules[sym.value]
            rule.refcount -= 1
            self._users[sym.value].discard(sym)
            if rule.refcount == 1:
                self._pending_underused.append(rule)
        sym.prev = sym.next = None

    # -- the P1 machinery ----------------------------------------------------------

    def _check(self, left: Symbol) -> bool:
        """Enforce P1 on the digram starting at *left*.

        Returns True if the grammar was restructured (the caller's
        neighbouring digrams may then be stale).
        """
        if left is None or left.rule_of is not None:
            return False
        right = left.next
        if right.rule_of is not None:
            return False
        # run-length merge: adjacent equal values collapse into one token
        if left.value == right.value:
            self._delete_digram_at(left.prev)
            self._delete_digram_at(right)
            self._delete_digram_at(left)
            left.exp += right.exp
            self._unlink_merged(right)
            # the same guarded re-check pattern as _substitute: if the first
            # check restructured the neighbourhood, `left` may be unlinked
            if not self._check(left.prev):
                self._check(left)
            return True
        key = _digram_key(left.value, left.exp, right.value, right.exp)
        digrams = self._digrams
        found = digrams.get(key)
        if found is None:
            digrams[key] = left
            return False
        if found is left:
            return False
        if found.next is left or left.next is found:
            # overlapping occurrence; with run-length merging this can only
            # happen transiently — leave the index as-is
            return False
        self._match(left, found, key)
        return True

    def _unlink_merged(self, sym: Symbol) -> None:
        """Unlink a symbol absorbed by a run-length merge (digram entries
        already cleaned by the caller)."""
        sym.prev.next = sym.next
        sym.next.prev = sym.prev
        if sym.value < 0:
            rule = self.rules[sym.value]
            rule.refcount -= 1
            self._users[sym.value].discard(sym)
            if rule.refcount == 1:
                self._pending_underused.append(rule)
        sym.prev = sym.next = None

    def _match(self, left: Symbol, found: Symbol,
               key: Optional[DigramKey] = None) -> None:
        """The digram at *left* equals the indexed one at *found*.
        *key* is the digram's index key when the caller already built it
        (reused for the new rule's RHS, which is the same digram)."""
        if found.prev.rule_of is not None \
                and found.next.next.rule_of is not None:
            # the found occurrence is the entire RHS of an existing rule
            rule = found.prev.rule_of
            self._substitute(left, rule)
        else:
            rule = self._new_rule()
            a = Symbol(left.value, left.exp)
            b = Symbol(left.next.value, left.next.exp)
            self._link_after(rule.guard, a)
            self._link_after(a, b)
            # order matters: replacing `found` first keeps `left` valid
            self._substitute(found, rule)
            self._substitute(left, rule)
            self._digrams[key if key is not None else self._key(a)] = a

    def _substitute(self, left: Symbol, rule: Rule) -> None:
        """Replace the digram starting at *left* by a reference to *rule*."""
        anchor = left.prev
        self._unlink(left.next)
        self._unlink(left)
        sym = Symbol(rule.rid, 1)
        self._link_after(anchor, sym)
        if not self._check(anchor):
            self._check(sym)

    # -- the P2 machinery ---------------------------------------------------------

    def _process_underused(self) -> None:
        while self._pending_underused:
            rule = self._pending_underused.pop()
            if rule.rid == self.START_RID:
                continue
            if rule.refcount != 1 or rule.rid not in self.rules:
                continue
            users = self._users[rule.rid]
            if not users:
                continue
            user = next(iter(users))
            if user.exp != 1:
                # retained: inlining X^k would duplicate the RHS k times;
                # this retention is exactly the run-length optimization's
                # O(1)-for-loops behaviour
                continue
            self._inline(user, rule)

    def _inline(self, user: Symbol, rule: Rule) -> None:
        """Splice *rule*'s RHS in place of its single reference *user*."""
        anchor = user.prev
        self._unlink(user)
        first = rule.first
        last = rule.last
        if rule.empty:
            self._check(anchor)
        else:
            # splice the existing chain (interior digram entries stay valid)
            anchor_next = anchor.next
            anchor.next = first
            first.prev = anchor
            last.next = anchor_next
            anchor_next.prev = last
            # rule's guard no longer owns the chain
            rule.guard.next = rule.guard
            rule.guard.prev = rule.guard
            if not self._check(anchor):
                self._check(last)
        del self.rules[rule.rid]
        del self._users[rule.rid]

    # -- public API ------------------------------------------------------------------

    def append(self, value: int, exp: int = 1) -> None:
        """Feed one (possibly pre-run-length-compressed) token."""
        if value < 0:
            raise ValueError(f"terminals must be non-negative, got {value}")
        if exp <= 0:
            raise ValueError(f"exponent must be positive, got {exp}")
        self.n_input += exp
        predict = self._predict
        if predict is not None:
            if exp == 1 and value == predict[self._predict_pos]:
                self._predict_pos += 1
                if self._predict_pos == len(predict):
                    # a full extra loop iteration: bump the tail exponent
                    self._bump_tail()
                return
            self._flush_prediction()
        # the body of _append_raw, inlined into the per-call hot path
        last = self.start.guard.prev
        if last.rule_of is None and last.value == value:
            self._delete_digram_at(last.prev)
            last.exp += exp
            self._check(last.prev)
        else:
            sym = Symbol(value, exp)
            self._link_after(last, sym)
            self._check(last)
        if self._pending_underused:
            self._process_underused()
        if self.loop_detection:
            self._arm_prediction()

    def _append_raw(self, value: int, exp: int) -> None:
        last = self.start.guard.prev
        if last.rule_of is None and last.value == value:
            self._delete_digram_at(last.prev)
            last.exp += exp
            self._check(last.prev)
        else:
            sym = Symbol(value, exp)
            self._link_after(last, sym)
            self._check(last)
        if self._pending_underused:
            self._process_underused()

    # -- loop detection ---------------------------------------------------------------

    def _arm_prediction(self) -> None:
        """If the grammar now ends in X^k (k >= 2), predict that the input
        will repeat X's expansion."""
        tail = self.start.guard.prev
        if tail.rule_of is None and tail.value < 0 and tail.exp >= 2:
            out = self._expand_cache.get(tail.value)
            if out is None:
                out = []
                self._expand_rule(self.rules[tail.value], 1, out, set())
                self._expand_cache[tail.value] = out
            if out:
                self._predict = out
                self._predict_pos = 0
                return
        self._predict = None
        self._predict_pos = 0

    def _bump_tail(self) -> None:
        """The predicted iteration matched completely: tail.exp += 1."""
        tail = self.start.guard.prev
        self._delete_digram_at(tail.prev)
        tail.exp += 1
        self._check(tail.prev)
        if self._pending_underused:
            self._process_underused()
        self._predict_pos = 0
        if self.loop_detection:
            self._arm_prediction()

    def _flush_prediction(self) -> None:
        """Replay a partially-matched prediction through the normal path."""
        predict, pos = self._predict, self._predict_pos
        self._predict = None
        self._predict_pos = 0
        if predict is not None and pos:
            for v in predict[:pos]:
                self._append_raw(v, 1)

    def flush(self) -> None:
        """Flush any partially-matched loop prediction into the grammar.
        Must be called before serialization or expansion of a live
        grammar; idempotent."""
        self._flush_prediction()

    def append_array(self, values: Sequence[int],
                     exps: Optional[Sequence[int]] = None) -> None:
        """Feed a batch of terminals; byte-identical to appending each
        one with :meth:`append`, but substantially faster.

        Two things make the batch path cheap: the per-append attribute
        and bound-method lookups are hoisted out of the loop, and a live
        loop prediction is matched against the input a whole iteration
        at a time with one C-level slice comparison instead of one
        Python-level comparison per element — the dominant case for
        loopy traces.  When *exps* is given (run-length input) each
        token takes the scalar path, which is the only one that handles
        exponents.
        """
        if exps is not None:
            append = self.append
            for v, e in zip(values, exps):
                append(v, e)
            return
        if not isinstance(values, list):
            values = list(values)
        n = len(values)
        i = 0
        guard = self.start.guard
        check = self._check
        delete_digram_at = self._delete_digram_at
        link_after = self._link_after
        loop_detection = self.loop_detection
        while i < n:
            predict = self._predict
            if predict is not None:
                pos = self._predict_pos
                plen = len(predict)
                need = plen - pos
                if n - i >= need and values[i:i + need] == predict[pos:]:
                    # one full predicted iteration matched at C speed:
                    # same state transitions as `need` scalar appends
                    self.n_input += need
                    i += need
                    self._predict_pos = plen
                    self._bump_tail()
                    continue
                # scan element-wise to the first mismatch (or input end)
                j, p = i, pos
                while j < n and p < plen and values[j] == predict[p]:
                    j += 1
                    p += 1
                self.n_input += j - i
                i = j
                self._predict_pos = p
                if i == n:
                    return          # batch ends mid-prediction; state saved
                self._flush_prediction()
                # values[i] mismatched the prediction: raw-append it below
            value = values[i]
            i += 1
            if value < 0:
                raise ValueError(
                    f"terminals must be non-negative, got {value}")
            self.n_input += 1
            last = guard.prev
            if last.rule_of is None and last.value == value:
                delete_digram_at(last.prev)
                last.exp += 1
                check(last.prev)
            else:
                sym = Symbol(value, 1)
                link_after(last, sym)
                check(last)
            if self._pending_underused:
                self._process_underused()
            if loop_detection:
                self._arm_prediction()

    def extend(self, values: Iterable[int],
               exps: Optional[Sequence[int]] = None) -> None:
        """Feed many tokens; equivalent to calling :meth:`append` per
        element (same run-length and loop-prediction bookkeeping), routed
        through :meth:`append_array`."""
        self.append_array(values if isinstance(values, list)
                          else list(values), exps)

    # -- inspection -----------------------------------------------------------------

    def expand(self) -> list[int]:
        """Decompress: the exact sequence of appended terminals."""
        out: list[int] = []
        self._expand_rule(self.start, 1, out, set())
        if self._predict is not None and self._predict_pos:
            out.extend(self._predict[:self._predict_pos])
        return out

    def _expand_rule(self, rule: Rule, times: int, out: list[int],
                     active: set[int]) -> None:
        if rule.rid in active:
            raise ValueError(f"cyclic grammar at rule {rule.rid}")
        active.add(rule.rid)
        once_start = len(out)
        for value, exp in rule.tokens():
            if value >= 0:
                out.extend([value] * exp)
            else:
                self._expand_rule(self.rules[value], exp, out, active)
        active.discard(rule.rid)
        if times > 1:
            once = out[once_start:]
            for _ in range(times - 1):
                out.extend(once)

    def n_rules(self) -> int:
        return len(self.rules)

    def n_tokens(self) -> int:
        """Total number of (value, exp) tokens across all RHSs — the
        grammar's size in symbols."""
        return sum(sum(1 for _ in r.tokens()) for r in self.rules.values())

    def check_invariants(self) -> None:
        """Assert P1 (token-digram uniqueness) and P2 (rule utility).

        Used by the property-based tests; raises AssertionError on
        violation.
        """
        seen: dict[tuple[int, int, int, int], tuple[int, int]] = {}
        refcounts: dict[int, int] = {rid: 0 for rid in self.rules}
        for rule in self.rules.values():
            prev_tok: Optional[tuple[int, int]] = None
            pos = 0
            sym = rule.first
            while not sym.is_guard:
                tok = (sym.value, sym.exp)
                if sym.is_rule_ref:
                    assert sym.value in self.rules, \
                        f"dangling rule ref {sym.value}"
                    refcounts[sym.value] += 1
                if prev_tok is not None:
                    assert prev_tok[0] != tok[0], \
                        f"unmerged run {prev_tok}/{tok} in R{rule.rid}"
                    key = (*prev_tok, *tok)
                    assert key not in seen, \
                        f"digram {key} appears twice: {seen[key]} and " \
                        f"(R{rule.rid}, {pos})"
                    seen[key] = (rule.rid, pos)
                prev_tok = tok
                pos += 1
                sym = sym.next
        for rid, rule in self.rules.items():
            assert rule.refcount == refcounts[rid], \
                f"refcount drift on R{rid}: {rule.refcount} vs {refcounts[rid]}"
            if rid != self.START_RID:
                users = self._users[rid]
                if refcounts[rid] == 1:
                    (user,) = tuple(users)
                    assert user.exp > 1, \
                        f"single-use rule R{rid} with exp==1 not inlined"
                else:
                    assert refcounts[rid] >= 2, f"orphan rule R{rid}"
