"""Compact binary packing: varints and a tagged value serializer.

Pilgrim stores grammars "internally as an array of integers" and writes
binary trace files; all size numbers this reproduction reports are real
bytes produced by this module (no pickle bloat, no JSON).  Integers use
LEB128 varints with zigzag signing; structured signature values use a
small tag-prefixed encoding closed under the value shapes the encoder
emits (ints, strings, booleans, None, and tuples thereof).
"""

from __future__ import annotations

from typing import Any, Iterable

from .errors import CorruptTraceError, TruncatedTraceError


def zigzag(n: int) -> int:
    # NB: the C idiom ``(n << 1) ^ (n >> 63)`` is wrong on Python's
    # unbounded ints once n <= -2**63 (the arithmetic shift no longer
    # yields -1); the closed form below holds for any magnitude.
    return -2 * n - 1 if n < 0 else 2 * n


def unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def write_uvarint(out: bytearray, n: int) -> None:
    if n < 0:
        raise ValueError(f"uvarint of negative {n}")
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def write_varint(out: bytearray, n: int) -> None:
    write_uvarint(out, zigzag(n))


class Reader:
    """Sequential reader over packed bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.data)

    def read_uvarint(self) -> int:
        data, pos = self.data, self.pos
        end = len(data)
        shift = 0
        result = 0
        while True:
            if pos >= end:
                # also the guard for a malformed varint whose continuation
                # bits run longer than the buffer: the loop can never
                # shift past the data that actually exists
                raise TruncatedTraceError(
                    f"varint starting at byte {self.pos} runs past the "
                    f"end of the {end}-byte buffer")
            b = data[pos]
            pos += 1
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                break
            shift += 7
        self.pos = pos
        return result

    def read_varint(self) -> int:
        return unzigzag(self.read_uvarint())

    def read_byte(self) -> int:
        if self.pos >= len(self.data):
            raise TruncatedTraceError(
                f"expected a byte at offset {self.pos}, buffer has "
                f"{len(self.data)}")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def read_bytes(self, n: int) -> bytes:
        chunk = self.data[self.pos:self.pos + n]
        if len(chunk) != n:
            raise TruncatedTraceError(
                f"expected {n} bytes at offset {self.pos}, buffer has "
                f"{len(self.data) - self.pos} left")
        self.pos += n
        return chunk

    def remaining(self) -> int:
        return len(self.data) - self.pos


# -- tagged values ---------------------------------------------------------------

_T_NONE = 0
_T_INT = 1
_T_STR = 2
_T_TUPLE = 3
_T_TRUE = 4
_T_FALSE = 5
_T_FLOAT = 6


def write_value(out: bytearray, v: Any) -> None:
    """Serialize one (possibly nested) signature value."""
    if v is None:
        out.append(_T_NONE)
    elif v is True:
        out.append(_T_TRUE)
    elif v is False:
        out.append(_T_FALSE)
    elif isinstance(v, int):
        out.append(_T_INT)
        write_varint(out, v)
    elif isinstance(v, str):
        raw = v.encode("utf-8")
        out.append(_T_STR)
        write_uvarint(out, len(raw))
        out.extend(raw)
    elif isinstance(v, tuple):
        out.append(_T_TUPLE)
        write_uvarint(out, len(v))
        for item in v:
            write_value(out, item)
    elif isinstance(v, float):
        import struct
        out.append(_T_FLOAT)
        out.extend(struct.pack("<d", v))
    else:
        raise TypeError(f"unsupported signature value type {type(v)!r}")


def read_value(r: Reader) -> Any:
    tag = r.read_byte()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return r.read_varint()
    if tag == _T_STR:
        n = r.read_uvarint()
        raw = r.read_bytes(n)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as e:
            raise CorruptTraceError(
                f"string value at offset {r.pos - n} is not UTF-8: "
                f"{e}") from None
    if tag == _T_TUPLE:
        n = r.read_uvarint()
        if n > r.remaining():
            # every element costs at least its tag byte; an impossible
            # count means the length field itself is damaged — fail now
            # instead of looping toward the inevitable
            raise TruncatedTraceError(
                f"tuple of {n} elements at offset {r.pos} exceeds the "
                f"{r.remaining()} bytes left")
        return tuple(read_value(r) for _ in range(n))
    if tag == _T_FLOAT:
        import struct
        (v,) = struct.unpack("<d", r.read_bytes(8))
        return v
    raise CorruptTraceError(f"unknown value tag {tag} at offset {r.pos - 1}")


def pack_value(v: Any) -> bytes:
    out = bytearray()
    write_value(out, v)
    return bytes(out)


def pack_ints(ints: Iterable[int]) -> bytes:
    out = bytearray()
    for n in ints:
        write_varint(out, n)
    return bytes(out)


def unpack_ints(data: bytes) -> list[int]:
    r = Reader(data)
    out = []
    while not r.exhausted:
        out.append(r.read_varint())
    return out
