"""Inter-process CFG compression (§3.5.2, Fig 4).

Per-rank grammars are first checked for identity — a cheap equality test
on their canonical frozen form (Pilgrim compares the int arrays with
memcmp) — because in SPMD codes most ranks build *identical* grammars.
Unique grammars are then merged into one rule space: a new start rule
concatenates the per-rank sub-grammar heads (with run-length exponents
collapsing runs of identical ranks), and a final Sequitur pass compresses
that rank-level sequence.  The result is a single :class:`Grammar` whose
expansion is the concatenation of every rank's terminal string in rank
order, exactly as the paper describes its decompression.
"""

from __future__ import annotations

from dataclasses import dataclass

from .grammar import Grammar
from .sequitur import Sequitur


@dataclass
class CFGMergeResult:
    """Outcome of the inter-process CFG merge."""

    final: Grammar
    #: rank -> unique-grammar index (the trace format stores this map)
    rank_uid: list[int]
    #: the deduplicated per-rank grammars, in first-appearance order
    unique: list[Grammar]

    @property
    def n_unique(self) -> int:
        return len(self.unique)


def merge_grammars(per_rank: list[Grammar],
                   loop_detection: bool = True,
                   dedup: bool = True) -> CFGMergeResult:
    """Merge per-rank grammars into one, deduplicating identical ones.

    ``dedup=False`` skips the identity check (the ablation the paper
    motivates in §3.5.2: without it the final Sequitur pass sees P
    sub-grammars instead of a handful and both size and merge time blow
    up for SPMD codes).
    """
    unique: list[Grammar] = []
    rank_uid: list[int] = []
    if dedup:
        unique_index: dict[Grammar, int] = {}
        for g in per_rank:
            uid = unique_index.get(g)
            if uid is None:
                uid = len(unique)
                unique_index[g] = uid
                unique.append(g)
            rank_uid.append(uid)
    else:
        unique = list(per_rank)
        rank_uid = list(range(len(per_rank)))

    # Final Sequitur pass over the rank -> sub-grammar sequence.  Runs of
    # the same uid collapse through run-length exponents, so P identical
    # ranks cost O(1) — this is where "27 unique grammars at 16K ranks"
    # stays ~600KB (Fig 9).
    top_seq = Sequitur(loop_detection=loop_detection)
    i = 0
    n = len(rank_uid)
    while i < n:
        j = i
        while j < n and rank_uid[j] == rank_uid[i]:
            j += 1
        top_seq.append(rank_uid[i], j - i)
        i = j
    top = Grammar.freeze(top_seq)

    # Splice: [top rules] + [each unique grammar's rules, shifted].
    n_top = len(top.rules)
    bases: list[int] = []
    off = n_top
    for g in unique:
        bases.append(off)
        off += len(g.rules)

    rules: list[tuple] = []
    for rule in top.rules:
        body = []
        for v, e in rule:
            if v >= 0:
                # a top-level "terminal" is a unique-grammar id: point it
                # at that sub-grammar's start rule
                body.append((-(bases[v] + 1), e))
            else:
                body.append((v, e))
        rules.append(tuple(body))
    for g, base in zip(unique, bases):
        rules.extend(g.shift_rules(base))

    return CFGMergeResult(final=Grammar(tuple(rules)), rank_uid=rank_uid,
                          unique=unique)


def expand_rank(result: CFGMergeResult, rank: int) -> list[int]:
    """Decompress one rank's terminal sequence (global CST symbols)."""
    return result.unique[result.rank_uid[rank]].expand()
