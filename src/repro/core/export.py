"""Trace exporters — the paper's other §6 direction:

    "Another direction is to develop a converter that converts Pilgrim
    traces into some existing trace formats (e.g., OTF)."

Two converters:

* :func:`to_text` — Recorder/mpiP-style flat text: one line per call,
  per rank, with materialized arguments.  This is "the decoder that
  decompresses and decodes the traces into original uncompressed trace
  records" in file form.
* :func:`to_otf_events` / :func:`write_otf_text` — an OTF-flavoured
  event stream: DEFINE records for ranks, functions, and signatures,
  then ENTER/LEAVE event pairs per call.  Timestamps come from the CST's
  per-signature mean durations (Pilgrim's default timing mode) or, when
  the trace carries lossy timing sections, from the reconstructed
  per-call clocks (§3.2).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterator, Optional

from .decoder import TraceDecoder


def to_text(trace_bytes: bytes, *, ranks: Optional[list[int]] = None,
            max_calls_per_rank: Optional[int] = None) -> str:
    """Flat per-rank text dump of the decoded trace."""
    dec = TraceDecoder.from_bytes(trace_bytes)
    out = io.StringIO()
    out.write(f"# pilgrim trace: {dec.nprocs} ranks, "
              f"{len(dec.trace.cst.sigs)} signatures\n")
    for rank in ranks if ranks is not None else range(dec.nprocs):
        out.write(f"# --- rank {rank} ---\n")
        for i, call in enumerate(dec.rank_calls(rank)):
            if max_calls_per_rank is not None and i >= max_calls_per_rank:
                out.write(f"# ... truncated at {max_calls_per_rank}\n")
                break
            args = ", ".join(f"{k}={v!r}"
                             for k, v in call.materialized().items())
            out.write(f"{rank} {call.fname}({args})\n")
    return out.getvalue()


@dataclass(frozen=True)
class OtfEvent:
    """One OTF-flavoured event record."""

    kind: str        # "DEFINE_FUNCTION" | "DEFINE_RANK" | "ENTER" | "LEAVE"
    rank: int
    timestamp: float
    ref: int         # function id for ENTER/LEAVE; definition id otherwise
    name: str = ""


def to_otf_events(trace_bytes: bytes,
                  ranks: Optional[list[int]] = None) -> Iterator[OtfEvent]:
    """Yield an OTF-style definition + event stream.

    Per-call timestamps: if the trace has lossy timing sections, the
    reconstructed (t_start, t_end) clocks are used (relative error
    <= b-1, §3.2); otherwise each call's CST mean duration spaces an
    artificial per-rank clock — the best a stats-only trace can offer.
    """
    dec = TraceDecoder.from_bytes(trace_bytes)
    trace = dec.trace

    fnames: dict[str, int] = {}
    for term in range(len(trace.cst.sigs)):
        fname, _ = dec._decode_sig(term)
        if fname not in fnames:
            fid = len(fnames)
            fnames[fname] = fid
            yield OtfEvent("DEFINE_FUNCTION", -1, 0.0, fid, fname)
    rank_list = ranks if ranks is not None else list(range(dec.nprocs))
    for rank in rank_list:
        yield OtfEvent("DEFINE_RANK", rank, 0.0, rank, f"rank {rank}")

    has_timing = trace.timing_duration is not None
    for rank in rank_list:
        terms = dec.rank_terminals(rank)
        if has_timing:
            # the decoder replays the binning bases persisted in the
            # trace's timing-meta section (per-function overrides too)
            times = dec.rank_times(rank)
        else:
            times = None
            clock = 0.0
        for i, term in enumerate(terms):
            fname, _ = dec._decode_sig(term)
            fid = fnames[fname]
            if times is not None:
                t0, t1 = times[i]
            else:
                t0 = clock
                count = trace.cst.counts[term]
                t1 = t0 + (trace.cst.dur_sums[term] / count if count
                           else 0.0)
                clock = t1
            yield OtfEvent("ENTER", rank, t0, fid)
            yield OtfEvent("LEAVE", rank, t1, fid)


def write_otf_text(trace_bytes: bytes,
                   ranks: Optional[list[int]] = None) -> str:
    """Render the OTF-style stream as text (one record per line)."""
    out = io.StringIO()
    for ev in to_otf_events(trace_bytes, ranks):
        if ev.kind.startswith("DEFINE"):
            out.write(f"{ev.kind} {ev.ref} \"{ev.name}\"\n")
        else:
            out.write(f"{ev.kind} rank={ev.rank} t={ev.timestamp:.9f} "
                      f"fn={ev.ref}\n")
    return out.getvalue()
