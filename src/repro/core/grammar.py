"""Frozen (serialized) grammars: the unit of inter-process compression.

A live :class:`~repro.core.sequitur.Sequitur` is frozen into a
:class:`Grammar` — a tuple of rules, each a tuple of ``(value, exp)``
tokens where non-negative values are terminals and ``-(k+1)`` references
rule *k*.  Freezing is **canonical** (rules renumbered in first-use DFS
order from the start rule), so two processes that built structurally
identical grammars serialize to identical objects/bytes.  That is what
makes the paper's "identical grammar" fast path (§3.5.2) a cheap
memory-comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from .errors import CorruptTraceError
from .packing import Reader, pack_ints, write_varint
from .sequitur import Sequitur

Token = tuple[int, int]
Rule = tuple[Token, ...]


@dataclass(frozen=True)
class Grammar:
    """An immutable CFG; rule 0 is the start rule."""

    rules: tuple[Rule, ...]

    # -- construction -----------------------------------------------------------

    @classmethod
    def freeze(cls, seq: Sequitur) -> "Grammar":
        """Canonical snapshot of a live Sequitur grammar (flushes any
        pending loop prediction first)."""
        seq.flush()
        order: dict[int, int] = {}

        def visit(rid: int) -> None:
            if rid in order:
                return
            order[rid] = len(order)
            for value, _exp in seq.rules[rid].tokens():
                if value < 0:
                    visit(value)

        visit(seq.START_RID)
        # DFS above assigns parents before children but visits depth-first;
        # renumber breadth-consistently by the recorded first-visit order.
        rules: list[Rule] = [()] * len(order)
        for rid, idx in order.items():
            body = []
            for value, exp in seq.rules[rid].tokens():
                if value < 0:
                    body.append((-(order[value] + 1), exp))
                else:
                    body.append((value, exp))
            rules[idx] = tuple(body)
        return cls(tuple(rules))

    # -- queries ---------------------------------------------------------------------

    @property
    def n_rules(self) -> int:
        return len(self.rules)

    @property
    def n_tokens(self) -> int:
        return sum(len(r) for r in self.rules)

    def expand(self, max_len: int | None = None) -> list[int]:
        """The terminal string this grammar uniquely generates."""
        memo: dict[int, list[int]] = {}

        def body(idx: int, active: frozenset) -> list[int]:
            got = memo.get(idx)
            if got is not None:
                return got
            if idx in active:
                raise ValueError(f"cyclic grammar at rule {idx}")
            out: list[int] = []
            for value, exp in self.rules[idx]:
                if value >= 0:
                    out.extend([value] * exp)
                else:
                    sub = body(-value - 1, active | {idx})
                    if exp == 1:
                        out.extend(sub)
                    else:
                        out.extend(sub * exp)
            memo[idx] = out
            return out

        return body(0, frozenset())

    def expanded_length(self) -> int:
        """Length of the expanded string without materializing it."""
        memo: dict[int, int] = {}

        def length(idx: int, active: frozenset) -> int:
            got = memo.get(idx)
            if got is not None:
                return got
            if idx in active:
                raise ValueError(f"cyclic grammar at rule {idx}")
            n = 0
            for value, exp in self.rules[idx]:
                if value >= 0:
                    n += exp
                else:
                    n += exp * length(-value - 1, active | {idx})
            memo[idx] = n
            return n

        return length(0, frozenset())

    def iter_terminals(self) -> Iterator[int]:
        """All terminal values mentioned (with repetition per token)."""
        for rule in self.rules:
            for value, _exp in rule:
                if value >= 0:
                    yield value

    # -- transforms --------------------------------------------------------------------

    def remap_terminals(self, mapping: Callable[[int], int]) -> "Grammar":
        """Apply a terminal renumbering (local → global CST symbols)."""
        return Grammar(tuple(
            tuple((mapping(v) if v >= 0 else v, e) for v, e in rule)
            for rule in self.rules))

    def shift_rules(self, offset: int) -> tuple[Rule, ...]:
        """Rule bodies with every rule reference shifted by *offset*
        (used when splicing grammars into a merged rule space)."""
        return tuple(
            tuple((v if v >= 0 else v - offset, e) for v, e in rule)
            for rule in self.rules)

    # -- serialization ------------------------------------------------------------------

    def to_ints(self) -> list[int]:
        """Flat int-array encoding (Pilgrim stores grammars this way):
        ``[nrules, len(rule0), v,e,v,e,..., len(rule1), ...]``."""
        out = [len(self.rules)]
        for rule in self.rules:
            out.append(len(rule))
            for v, e in rule:
                out.append(v)
                out.append(e)
        return out

    def to_bytes(self) -> bytes:
        return pack_ints(self.to_ints())

    @classmethod
    def from_ints(cls, ints: list[int]) -> "Grammar":
        it = iter(ints)
        nrules = next(it)
        rules = []
        for _ in range(nrules):
            ntok = next(it)
            rule = tuple((next(it), next(it)) for _ in range(ntok))
            rules.append(rule)
        return cls(tuple(rules))

    @classmethod
    def from_reader(cls, r: Reader) -> "Grammar":
        nrules = r.read_varint()
        if nrules < 0:
            raise CorruptTraceError(f"negative grammar rule count {nrules}")
        rules = []
        for i in range(nrules):
            ntok = r.read_varint()
            if ntok < 0:
                raise CorruptTraceError(
                    f"negative token count {ntok} in rule {i}")
            rule = tuple((r.read_varint(), r.read_varint())
                         for _ in range(ntok))
            rules.append(rule)
        return cls(tuple(rules))

    def write_to(self, out: bytearray) -> None:
        write_varint(out, len(self.rules))
        for rule in self.rules:
            write_varint(out, len(rule))
            for v, e in rule:
                write_varint(out, v)
                write_varint(out, e)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Grammar":
        return cls.from_reader(Reader(data))

    def size_bytes(self) -> int:
        return len(self.to_bytes())
