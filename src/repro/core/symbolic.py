"""Symbolic id management for MPI objects and memory (§3.3, §3.4.3).

Pilgrim never stores raw handles or addresses: every opaque object gets a
locally-unique small symbolic id drawn from a pool of free ids, returned
to the pool when the object is released.  Processes that create objects
in the same order therefore assign the same ids — the property the
inter-process compression feeds on.

Three flavours live here:

* :class:`IdPool` — lowest-free-id allocator (a heap of revoked ids plus
  a high-water counter), so reuse is deterministic.
* :class:`ObjectIdTable` — key → symbolic id mapping over one pool, for
  datatypes, groups, and memory segments.
* :class:`RequestIdAllocator` — the paper's fix for non-deterministic
  request completion order: one pool *per creation signature* (request
  argument excluded), so the k-th outstanding request of a given
  signature always carries the same id, regardless of completion order.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Hashable, Optional


class IdPool:
    """Hands out the smallest free non-negative id."""

    __slots__ = ("_free", "_next")

    def __init__(self) -> None:
        self._free: list[int] = []
        self._next = 0

    def acquire(self) -> int:
        if self._free:
            return heapq.heappop(self._free)
        nid = self._next
        self._next += 1
        return nid

    def release(self, nid: int) -> None:
        heapq.heappush(self._free, nid)

    @property
    def high_water(self) -> int:
        """Total distinct ids ever created (the paper's observation is
        that this stays small when applications reuse/free objects)."""
        return self._next


class ObjectIdTable:
    """key → symbolic id over a single IdPool."""

    __slots__ = ("_ids", "_pool")

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._pool = IdPool()

    def lookup(self, key: Hashable) -> Optional[int]:
        return self._ids.get(key)

    def assign(self, key: Hashable) -> int:
        if key in self._ids:
            raise KeyError(f"key {key!r} already has symbolic id")
        sid = self._pool.acquire()
        self._ids[key] = sid
        return sid

    def lookup_or_assign(self, key: Hashable) -> int:
        sid = self._ids.get(key)
        if sid is None:
            sid = self._pool.acquire()
            self._ids[key] = sid
        return sid

    def release(self, key: Hashable) -> int:
        sid = self._ids.pop(key)
        self._pool.release(sid)
        return sid

    @property
    def live_count(self) -> int:
        return len(self._ids)

    @property
    def high_water(self) -> int:
        return self._pool.high_water


class RequestIdAllocator:
    """Per-signature request id pools (§3.4.3).

    A request's symbolic id is the pair ``(pool_index, slot)`` where
    ``pool_index`` identifies the creation signature (in order of first
    appearance on this rank — identical across ranks for SPMD codes) and
    ``slot`` is drawn from that signature's own free-id pool.
    """

    __slots__ = ("_pool_index", "_pools", "_active", "_refs")

    def __init__(self) -> None:
        #: creation signature -> dense pool index
        self._pool_index: dict[tuple, int] = {}
        self._pools: list[IdPool] = []
        #: live request identity -> (pool index, slot)
        self._active: dict[int, tuple[int, int]] = {}
        #: strong references to live request objects: ids are keyed by
        #: ``id(request)``, so without a reference a garbage-collected
        #: (e.g. fire-and-forget isend) request would let a NEW object at
        #: the same address alias its symbolic id
        self._refs: dict[int, object] = {}

    def on_create(self, request_key: int, creation_sig: tuple,
                  ref: object = None) -> tuple[int, int]:
        """Assign an id when a request-producing call is recorded."""
        idx = self._pool_index.get(creation_sig)
        if idx is None:
            idx = len(self._pools)
            self._pool_index[creation_sig] = idx
            self._pools.append(IdPool())
        pool = self._pools[idx]
        # inlined IdPool.acquire — request creation is on the tracing
        # hot path and the extra call frame is measurable there
        if pool._free:
            slot = heappop(pool._free)
        else:
            slot = pool._next
            pool._next = slot + 1
        sym = (idx, slot)
        self._active[request_key] = sym
        if ref is not None:
            self._refs[request_key] = ref
        return sym

    def lookup(self, request_key: int) -> Optional[tuple[int, int]]:
        return self._active.get(request_key)

    def on_release(self, request_key: int) -> Optional[tuple[int, int]]:
        """Free the id when the request completes (Wait/Test success) or
        is explicitly freed.  Unknown requests are ignored (e.g. already
        released by an earlier Waitany consuming it)."""
        sym = self._active.pop(request_key, None)
        self._refs.pop(request_key, None)
        if sym is not None:
            # inlined IdPool.release (hot path, see on_create)
            heappush(self._pools[sym[0]]._free, sym[1])
        return sym

    @property
    def n_pools(self) -> int:
        return len(self._pools)

    @property
    def live_count(self) -> int:
        return len(self._active)
