"""The Pilgrim tracer (the paper's primary contribution, assembled).

Attach an instance to a :class:`repro.mpisim.SimMPI` run::

    tracer = PilgrimTracer()
    sim = SimMPI(nprocs=64, seed=1, tracer=tracer)
    sim.run(program)
    result = tracer.result          # PilgrimResult
    blob = result.trace_bytes       # the on-disk trace
    print(result.section_sizes())   # {"cst": ..., "cfg": ..., "total": ...}

Pipeline per intercepted call (Fig 2): encode parameters symbolically →
intern the signature in this rank's CST → grow this rank's CFG with the
terminal (optimized Sequitur) → optionally compress timing.  Each rank's
state lives in a :class:`~repro.core.shard.RankCompressor`; at
``MPI_Finalize`` time the inter-process compression runs as the explicit
shard → reduce → serialize pipeline of :mod:`repro.core.pipeline` — a
ceil(log2 P) tree reduction over per-rank shards that runs serially by
default and in parallel with ``jobs=N`` (byte-identical either way,
because the shard merge is associative).

All the paper's optimizations are individually toggleable for the
ablation benchmarks: ``relative_ranks`` (§3.4.2),
``per_signature_request_pools`` (§3.4.3), ``loop_detection`` (§2.2's
run-length/loop optimization), ``cfg_dedup`` (§3.5.2's identity check).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..mpisim.hooks import TracerHooks
from ..obs import (NULL_REGISTRY, MetricsRegistry, PhaseProfiler,
                   SpanRecorder)
from ..resilience.faults import FaultInjector, arm
from ..resilience.retry import RetryPolicy
from ..resilience.salvage import SalvageReport
from .cst import CST
from .encoder import CommIdSpace, PerRankEncoder, WinIdSpace
from .pipeline import TracePipeline
from .sequitur import Sequitur
from .shard import RankCompressor
from .timing import TimingCompressor, TimingMeta
from .trace_format import TraceFile

#: hoisted timer: the hot path pays two reads per call, and the
#: module-attribute hop is measurable at that frequency
_pc = _time.perf_counter

TIMING_AGGREGATE = "aggregate"
TIMING_LOSSY = "lossy"


@dataclass
class PilgrimResult:
    """Everything the finalize phase produced, plus perf accounting."""

    trace: TraceFile
    trace_bytes: bytes
    n_unique_grammars: int
    total_calls: int
    n_signatures: int
    #: real CPU seconds spent in per-call tracing (Fig 8 "intra-process")
    time_intra: float
    #: real CPU seconds in the shard freeze + CST tree reduction (Fig 8)
    time_cst_merge: float
    #: real CPU seconds in the CFG dedup/merge/final Sequitur (Fig 8)
    time_cfg_merge: float
    per_rank_calls: list[int] = field(default_factory=list)
    #: profiler phase -> wall seconds (always holds the finalize phases —
    #: including the per-level ``merge.level.<k>`` reduction timings;
    #: also the per-call split encode/cst/sequitur/timing when the tracer
    #: ran with an enabled metrics registry)
    phases: dict[str, float] = field(default_factory=dict)
    #: True when the resilient pipeline had to abandon any rank span or
    #: section; ``salvage`` then says exactly what was lost
    degraded: bool = False
    salvage: Optional[SalvageReport] = None
    #: audit log of every injected fault that actually fired
    fired_faults: list[str] = field(default_factory=list)
    #: exported span dicts for the whole run — one coherent tree rooted
    #: at the ``finalize`` span, with pooled workers' batches spliced in
    #: (empty when the tracer ran without a metrics registry)
    spans: list[dict[str, Any]] = field(default_factory=list)

    @property
    def trace_size(self) -> int:
        return len(self.trace_bytes)

    def section_sizes(self) -> dict[str, int]:
        return self.trace.section_sizes()

    @property
    def time_total_overhead(self) -> float:
        return self.time_intra + self.time_cst_merge + self.time_cfg_merge

    def overhead_breakdown(self) -> dict[str, float]:
        """Fig 8's decomposition, as fractions of total tracing overhead."""
        total = self.time_total_overhead or 1.0
        return {
            "intra": self.time_intra / total,
            "inter_cst": self.time_cst_merge / total,
            "inter_cfg": self.time_cfg_merge / total,
        }

    def phase_breakdown(self) -> dict[str, float]:
        """Profiler phases as fractions of their sum (the finer-grained
        decomposition the ``repro stats`` table renders)."""
        total = sum(self.phases.values()) or 1.0
        return {name: t / total for name, t in self.phases.items()}


class PilgrimTracer(TracerHooks):
    """Near-lossless tracing with CST+CFG compression."""

    def __init__(self, *,
                 relative_ranks: bool = True,
                 per_signature_request_pools: bool = True,
                 loop_detection: bool = True,
                 cfg_dedup: bool = True,
                 timing_mode: str = TIMING_AGGREGATE,
                 timing_base: float = 1.2,
                 per_function_base: Optional[dict[str, float]] = None,
                 keep_raw: bool = False,
                 jobs: int = 1,
                 signature_cache: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 fault_plan=None,
                 retry: Optional[RetryPolicy] = None,
                 memory_watermark: Optional[int] = None,
                 batch_size: int = 1):
        if timing_mode not in (TIMING_AGGREGATE, TIMING_LOSSY):
            raise ValueError(f"unknown timing mode {timing_mode!r}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if memory_watermark is not None and memory_watermark < 1:
            raise ValueError(
                f"memory_watermark must be >= 1, got {memory_watermark}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.relative_ranks = relative_ranks
        self.per_signature_request_pools = per_signature_request_pools
        self.loop_detection = loop_detection
        self.cfg_dedup = cfg_dedup
        self.timing_mode = timing_mode
        self.timing_base = timing_base
        self.per_function_base = per_function_base
        self.keep_raw = keep_raw
        #: hot-path memoization (encoder signature cache + CST identity
        #: fast path); byte-identical traces either way — False is the
        #: ablation/benchmark baseline
        self.signature_cache = signature_cache
        #: worker processes for the finalize tree reduction (1 = serial)
        self.jobs = jobs
        #: armed fault injector (None when no plan is given: every
        #: injection point then reduces to a no-op None check).  An
        #: already-armed FaultInjector is accepted too, so the tracer
        #: and the simulator's scheduler can share one deterministic
        #: fault stream.
        self.faults: Optional[FaultInjector] = arm(fault_plan)
        #: retry policy for the resilient pipeline (None = defaults when
        #: faults are armed, no supervision otherwise)
        self.retry = retry
        #: soft per-rank memory watermark (degraded-mode tracing); see
        #: RankCompressor.spill
        self.memory_watermark = memory_watermark
        #: columnar hot path: calls are buffered per rank and run through
        #: the CST/Sequitur/timing stages a whole batch at a time —
        #: byte-identical to the per-call path, just faster.  1 = the
        #: classic per-call behaviour.
        self.batch_size = batch_size
        #: observability: disabled by default (NULL_REGISTRY) so the
        #: benchmarked hot path pays nothing unless profiling is requested
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.obs = self.metrics.scope("pilgrim")
        #: span telemetry rides the same opt-in as the registry: one
        #: recorder for the whole run, shared by the profiler (phase
        #: spans) and the pipeline (merge-task spans, worker batches)
        self.recorder = SpanRecorder(enabled=self.obs.enabled)
        self.profiler = PhaseProfiler(self.obs, recorder=self.recorder)
        # the fine per-call path appends through alias lists captured at
        # run start; a watermark spill swaps rc.grammar mid-run, so the
        # aliases would go stale — watermark runs use the coarse path.
        # Batched runs defer the cst/sequitur/timing stages into flushes,
        # so per-call stage attribution is only meaningful unbatched.
        self._fine = self.profiler.fine and memory_watermark is None \
            and batch_size == 1
        #: fine-grained per-call phase accumulators (seconds); folded into
        #: the profiler once at finalize to keep on_call cheap
        self._ph_encode = 0.0
        self._ph_cst = 0.0
        self._ph_seq = 0.0
        self._ph_timing = 0.0
        self._ph_mem = 0.0

        self.nprocs = 0
        self.comm_space: Optional[CommIdSpace] = None
        #: declared here, not first in on_run_start, so finalize() and
        #: introspection on a never-run tracer see None instead of dying
        #: with AttributeError
        self.win_space: Optional[WinIdSpace] = None
        #: per-rank compression state (the shard stage's input)
        self.ranks: list[RankCompressor] = []
        #: per-rank bound observe methods (observe / observe_batched),
        #: captured at run start so on_call skips the dispatch
        self._observe: list = []
        #: aliases into self.ranks, kept for the hot path and for
        #: existing consumers (verify, tests, benchmarks) — same objects
        self.encoders: list[PerRankEncoder] = []
        self.csts: list[CST] = []
        self.grammars: list[Sequitur] = []
        self.timing: list[TimingCompressor] = []
        #: per-rank local-terminal streams, kept for lossless verification
        self.raw_terms: list[list[int]] = []
        self.total_calls = 0
        self.time_intra = 0.0
        self.result: Optional[PilgrimResult] = None

    # -- hooks -------------------------------------------------------------------------

    def on_run_start(self, sim) -> None:
        self.nprocs = sim.nprocs
        self.comm_space = CommIdSpace(sim.nprocs)
        self.win_space = WinIdSpace(sim.nprocs)
        self.ranks = []
        for r in range(sim.nprocs):
            timing = TimingCompressor(
                self.timing_base, self.per_function_base,
                loop_detection=self.loop_detection) \
                if self.timing_mode == TIMING_LOSSY else None
            rc = RankCompressor(
                r, self.comm_space, win_space=self.win_space,
                relative_ranks=self.relative_ranks,
                per_signature_request_pools=self.per_signature_request_pools,
                loop_detection=self.loop_detection,
                timing=timing, keep_raw=self.keep_raw,
                signature_cache=self.signature_cache,
                memory_watermark=self.memory_watermark,
                batch_size=self.batch_size)
            rc.encoder.set_comm_resolver(sim.comm_by_cid)
            self.ranks.append(rc)
        self._observe = [rc.observe_batched if self.batch_size > 1
                         else rc.observe for rc in self.ranks]
        self.encoders = [rc.encoder for rc in self.ranks]
        self.csts = [rc.cst for rc in self.ranks]
        self.grammars = [rc.grammar for rc in self.ranks]
        self.timing = [rc.timing for rc in self.ranks] \
            if self.timing_mode == TIMING_LOSSY else []
        self.raw_terms = [rc.raw_terms for rc in self.ranks] \
            if self.keep_raw else []
        self.result = None

    def on_call(self, rank: int, fname: str, args: dict[str, Any],
                t0: float, t1: float) -> None:
        if self._fine:
            # profiled path: stamp each pipeline stage.  The stamps are
            # shared between adjacent stages, so the stage deltas sum to
            # the intra-process total exactly.
            tick = _time.perf_counter()
            sig = self.encoders[rank].encode_call(fname, args)
            tb = _time.perf_counter()
            term = self.csts[rank].intern(sig, t1 - t0)
            tc = _time.perf_counter()
            self.grammars[rank].append(term)
            end = _time.perf_counter()
            self._ph_encode += tb - tick
            self._ph_cst += tc - tb
            self._ph_seq += end - tc
            if self.timing:
                self.timing[rank].record(term, fname, t0, t1)
                te = _time.perf_counter()
                self._ph_timing += te - end
                end = te
            if self.keep_raw:
                self.raw_terms[rank].append(term)
            self.total_calls += 1
            self.time_intra += end - tick
            return
        tick = _pc()
        self._observe[rank](fname, args, t0, t1)
        self.total_calls += 1
        self.time_intra += _pc() - tick

    def record_batch(self, rank: int, fnames, argses, t0s, t1s) -> None:
        """Array entry point: trace whole columns of completed calls for
        one rank in one hook invocation (the batched counterpart of
        :meth:`on_call`; byte-identical output)."""
        tick = _pc()
        self.total_calls += self.ranks[rank].observe_array(
            fnames, argses, t0s, t1s)
        self.time_intra += _pc() - tick

    def flush_batches(self) -> None:
        """Drain every rank's partially filled call buffer (no-op when
        ``batch_size == 1`` or nothing is buffered).  ``finalize`` calls
        this automatically."""
        for rc in self.ranks:
            rc.flush_batch()

    def flush_partials(self) -> list:
        """Streaming produce path: drain every rank's buffered calls and
        package what was observed since the previous call into one
        :class:`~repro.core.shard.ShardPartial` per rank (ranks with
        nothing new are skipped).

        A tracer that has flushed partials can no longer ``finalize()``
        locally — the consumer of the partial stream owns the fold (see
        :meth:`RankCompressor.flush_partial
        <repro.core.shard.RankCompressor.flush_partial>`).  The ingest
        client's :class:`~repro.ingest.client.ChunkingTracer` drives
        this between simulator steps.
        """
        out = []
        for rc in self.ranks:
            p = rc.flush_partial()
            if p is not None:
                out.append(p)
        return out

    def on_mem(self, rank: int, fname: str, args: dict[str, Any],
               result: Any, t: float) -> None:
        tick = _time.perf_counter()
        mem = self.encoders[rank].memory
        if fname == "malloc":
            mem.on_alloc(result, args["size"])
        elif fname == "calloc":
            mem.on_alloc(result, args["nmemb"] * args["size"])
        elif fname == "realloc":
            if args["ptr"]:
                mem.on_free(args["ptr"])
            mem.on_alloc(result, args["size"])
        elif fname == "free":
            mem.on_free(args["ptr"])
        elif fname == "cudaMalloc":
            mem.on_alloc(result, args["size"], device=args.get("device", 0))
        elif fname == "cudaFree":
            mem.on_free(args["ptr"])
        dt = _time.perf_counter() - tick
        self.time_intra += dt
        if self._fine:
            self._ph_mem += dt

    def on_run_end(self, sim) -> None:
        self.result = self.finalize()

    # -- finalize (inter-process compression) ------------------------------------------------

    def finalize(self) -> PilgrimResult:
        # Idempotent: a second call must neither redo the pipeline nor
        # re-fold the per-call accumulators (which would double-count the
        # profiler's phases) — it returns the cached result.
        if self.result is not None:
            return self.result
        # batched runs: any tail shorter than batch_size is still buffered
        self.flush_batches()
        prof = self.profiler
        # The whole inter-process stage lives under one root span; the
        # root opens *before* the per-call fold so the synthetic
        # encode/cst/sequitur spans nest under it too.
        with self.recorder.span("finalize", scope="pilgrim",
                                nprocs=self.nprocs, jobs=self.jobs):
            # Fold the per-call accumulators into the profiler (fine mode
            # only — in coarse mode there is just the undivided intra
            # total).
            if self._fine:
                prof.add("encode", self._ph_encode, count=self.total_calls)
                prof.add("cst", self._ph_cst, count=self.total_calls)
                prof.add("sequitur", self._ph_seq, count=self.total_calls)
                if self.timing:
                    prof.add("timing", self._ph_timing,
                             count=self.total_calls)
                if self._ph_mem:
                    prof.add("mem", self._ph_mem)

            # Shard → reduce → serialize (see repro.core.pipeline).  The
            # reduce stage is the paper's log2 P tree over per-rank
            # partials; jobs > 1 distributes each level over a process
            # pool.
            timing_meta = TimingMeta(
                base=self.timing_base,
                per_function_base=dict(self.per_function_base or {})) \
                if self.timing_mode == TIMING_LOSSY else None
            pipeline = TracePipeline(loop_detection=self.loop_detection,
                                     cfg_dedup=self.cfg_dedup,
                                     jobs=self.jobs,
                                     profiler=prof, faults=self.faults,
                                     retry=self.retry,
                                     scope=self.metrics.scope("pipeline"),
                                     recorder=self.recorder,
                                     timing_meta=timing_meta)
            out = pipeline.run(self.ranks)
        trace, blob, cfg = out.trace, out.trace_bytes, out.cfg

        phases = prof.phases()
        finalize_wall = (out.time_reduce + prof.wall("cfg_merge")
                         + prof.wall("timing_merge") + prof.wall("serialize"))
        if self.obs.enabled:
            self.obs.counter("calls").inc(self.total_calls)
            self.obs.gauge("ranks").set(self.nprocs)
            self.obs.gauge("signatures").set(out.shard.n_signatures)
            self.obs.gauge("unique_grammars").set(cfg.n_unique)
            self.obs.gauge("trace_bytes").set(len(blob))
            self.obs.gauge("merge_jobs").set(self.jobs)
            self.obs.timer("intra").add(self.time_intra,
                                        count=self.total_calls)
            self.obs.timer("total").add(self.time_intra + finalize_wall)
            if self.timing:
                clamped = sum(t.n_clamped for t in self.timing)
                if clamped:
                    # surfaced alongside the BinClampWarning: these calls'
                    # timings fell outside the representable bin range
                    self.obs.counter("timing_clamped_bins").inc(clamped)

        self.result = PilgrimResult(
            trace=trace,
            trace_bytes=blob,
            n_unique_grammars=cfg.n_unique,
            total_calls=self.total_calls,
            n_signatures=out.shard.n_signatures,
            time_intra=self.time_intra,
            time_cst_merge=out.time_reduce,
            time_cfg_merge=out.time_cfg,
            per_rank_calls=[rc.observed_calls for rc in self.ranks],
            phases=phases,
            degraded=out.degraded,
            salvage=out.salvage,
            fired_faults=list(self.faults.fired)
            if self.faults is not None else [],
            spans=self.recorder.export(),
        )
        return self.result
