"""The Pilgrim tracer (the paper's primary contribution, assembled).

Attach an instance to a :class:`repro.mpisim.SimMPI` run::

    tracer = PilgrimTracer()
    sim = SimMPI(nprocs=64, seed=1, tracer=tracer)
    sim.run(program)
    result = tracer.result          # PilgrimResult
    blob = result.trace_bytes       # the on-disk trace
    print(result.section_sizes())   # {"cst": ..., "cfg": ..., "total": ...}

Pipeline per intercepted call (Fig 2): encode parameters symbolically →
intern the signature in this rank's CST → grow this rank's CFG with the
terminal (optimized Sequitur) → optionally compress timing.  At
``MPI_Finalize`` time the inter-process compression runs: CST merge +
terminal renumbering, then grammar dedup/merge/final-Sequitur.

All the paper's optimizations are individually toggleable for the
ablation benchmarks: ``relative_ranks`` (§3.4.2),
``per_signature_request_pools`` (§3.4.3), ``loop_detection`` (§2.2's
run-length/loop optimization), ``cfg_dedup`` (§3.5.2's identity check).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..mpisim.hooks import TracerHooks
from ..obs import NULL_REGISTRY, MetricsRegistry, PhaseProfiler
from .cst import CST, merge_csts
from .encoder import CommIdSpace, PerRankEncoder, WinIdSpace
from .grammar import Grammar
from .interproc import merge_grammars
from .sequitur import Sequitur
from .timing import TimingCompressor
from .trace_format import TraceFile

TIMING_AGGREGATE = "aggregate"
TIMING_LOSSY = "lossy"


@dataclass
class PilgrimResult:
    """Everything the finalize phase produced, plus perf accounting."""

    trace: TraceFile
    trace_bytes: bytes
    n_unique_grammars: int
    total_calls: int
    n_signatures: int
    #: real CPU seconds spent in per-call tracing (Fig 8 "intra-process")
    time_intra: float
    #: real CPU seconds in the CST merge + grammar renumbering (Fig 8)
    time_cst_merge: float
    #: real CPU seconds in the CFG dedup/merge/final Sequitur (Fig 8)
    time_cfg_merge: float
    per_rank_calls: list[int] = field(default_factory=list)
    #: profiler phase -> wall seconds (always holds the finalize phases;
    #: also the per-call split encode/cst/sequitur/timing when the tracer
    #: ran with an enabled metrics registry)
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def trace_size(self) -> int:
        return len(self.trace_bytes)

    def section_sizes(self) -> dict[str, int]:
        return self.trace.section_sizes()

    @property
    def time_total_overhead(self) -> float:
        return self.time_intra + self.time_cst_merge + self.time_cfg_merge

    def overhead_breakdown(self) -> dict[str, float]:
        """Fig 8's decomposition, as fractions of total tracing overhead."""
        total = self.time_total_overhead or 1.0
        return {
            "intra": self.time_intra / total,
            "inter_cst": self.time_cst_merge / total,
            "inter_cfg": self.time_cfg_merge / total,
        }

    def phase_breakdown(self) -> dict[str, float]:
        """Profiler phases as fractions of their sum (the finer-grained
        decomposition the ``repro stats`` table renders)."""
        total = sum(self.phases.values()) or 1.0
        return {name: t / total for name, t in self.phases.items()}


class PilgrimTracer(TracerHooks):
    """Near-lossless tracing with CST+CFG compression."""

    def __init__(self, *,
                 relative_ranks: bool = True,
                 per_signature_request_pools: bool = True,
                 loop_detection: bool = True,
                 cfg_dedup: bool = True,
                 timing_mode: str = TIMING_AGGREGATE,
                 timing_base: float = 1.2,
                 per_function_base: Optional[dict[str, float]] = None,
                 keep_raw: bool = False,
                 metrics: Optional[MetricsRegistry] = None):
        if timing_mode not in (TIMING_AGGREGATE, TIMING_LOSSY):
            raise ValueError(f"unknown timing mode {timing_mode!r}")
        self.relative_ranks = relative_ranks
        self.per_signature_request_pools = per_signature_request_pools
        self.loop_detection = loop_detection
        self.cfg_dedup = cfg_dedup
        self.timing_mode = timing_mode
        self.timing_base = timing_base
        self.per_function_base = per_function_base
        self.keep_raw = keep_raw
        #: observability: disabled by default (NULL_REGISTRY) so the
        #: benchmarked hot path pays nothing unless profiling is requested
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.obs = self.metrics.scope("pilgrim")
        self.profiler = PhaseProfiler(self.obs)
        self._fine = self.profiler.fine
        #: fine-grained per-call phase accumulators (seconds); folded into
        #: the profiler once at finalize to keep on_call cheap
        self._ph_encode = 0.0
        self._ph_cst = 0.0
        self._ph_seq = 0.0
        self._ph_timing = 0.0
        self._ph_mem = 0.0

        self.nprocs = 0
        self.comm_space: Optional[CommIdSpace] = None
        #: declared here, not first in on_run_start, so finalize() and
        #: introspection on a never-run tracer see None instead of dying
        #: with AttributeError
        self.win_space: Optional[WinIdSpace] = None
        self.encoders: list[PerRankEncoder] = []
        self.csts: list[CST] = []
        self.grammars: list[Sequitur] = []
        self.timing: list[TimingCompressor] = []
        #: per-rank local-terminal streams, kept for lossless verification
        self.raw_terms: list[list[int]] = []
        self.total_calls = 0
        self.time_intra = 0.0
        self.result: Optional[PilgrimResult] = None

    # -- hooks -------------------------------------------------------------------------

    def on_run_start(self, sim) -> None:
        self.nprocs = sim.nprocs
        self.comm_space = CommIdSpace(sim.nprocs)
        self.win_space = WinIdSpace(sim.nprocs)
        self.encoders = []
        for r in range(sim.nprocs):
            enc = PerRankEncoder(
                r, self.comm_space, win_space=self.win_space,
                relative_ranks=self.relative_ranks,
                per_signature_request_pools=self.per_signature_request_pools)
            enc.set_comm_resolver(sim.comm_by_cid)
            self.encoders.append(enc)
        self.csts = [CST() for _ in range(sim.nprocs)]
        self.grammars = [Sequitur(loop_detection=self.loop_detection)
                         for _ in range(sim.nprocs)]
        if self.timing_mode == TIMING_LOSSY:
            self.timing = [TimingCompressor(
                self.timing_base, self.per_function_base,
                loop_detection=self.loop_detection)
                for _ in range(sim.nprocs)]
        if self.keep_raw:
            self.raw_terms = [[] for _ in range(sim.nprocs)]

    def on_call(self, rank: int, fname: str, args: dict[str, Any],
                t0: float, t1: float) -> None:
        if self._fine:
            # profiled path: stamp each pipeline stage.  The stamps are
            # shared between adjacent stages, so the stage deltas sum to
            # the intra-process total exactly.
            tick = _time.perf_counter()
            sig = self.encoders[rank].encode_call(fname, args)
            tb = _time.perf_counter()
            term = self.csts[rank].intern(sig, t1 - t0)
            tc = _time.perf_counter()
            self.grammars[rank].append(term)
            end = _time.perf_counter()
            self._ph_encode += tb - tick
            self._ph_cst += tc - tb
            self._ph_seq += end - tc
            if self.timing:
                self.timing[rank].record(term, fname, t0, t1)
                te = _time.perf_counter()
                self._ph_timing += te - end
                end = te
            if self.keep_raw:
                self.raw_terms[rank].append(term)
            self.total_calls += 1
            self.time_intra += end - tick
            return
        tick = _time.perf_counter()
        sig = self.encoders[rank].encode_call(fname, args)
        term = self.csts[rank].intern(sig, t1 - t0)
        self.grammars[rank].append(term)
        if self.timing:
            self.timing[rank].record(term, fname, t0, t1)
        if self.keep_raw:
            self.raw_terms[rank].append(term)
        self.total_calls += 1
        self.time_intra += _time.perf_counter() - tick

    def on_mem(self, rank: int, fname: str, args: dict[str, Any],
               result: Any, t: float) -> None:
        tick = _time.perf_counter()
        mem = self.encoders[rank].memory
        if fname == "malloc":
            mem.on_alloc(result, args["size"])
        elif fname == "calloc":
            mem.on_alloc(result, args["nmemb"] * args["size"])
        elif fname == "realloc":
            if args["ptr"]:
                mem.on_free(args["ptr"])
            mem.on_alloc(result, args["size"])
        elif fname == "free":
            mem.on_free(args["ptr"])
        elif fname == "cudaMalloc":
            mem.on_alloc(result, args["size"], device=args.get("device", 0))
        elif fname == "cudaFree":
            mem.on_free(args["ptr"])
        dt = _time.perf_counter() - tick
        self.time_intra += dt
        if self._fine:
            self._ph_mem += dt

    def on_run_end(self, sim) -> None:
        self.result = self.finalize()

    # -- finalize (inter-process compression) ------------------------------------------------

    def finalize(self) -> PilgrimResult:
        prof = self.profiler
        # Fold the per-call accumulators into the profiler (fine mode only
        # — in coarse mode there is just the undivided intra total).
        if self._fine:
            prof.add("encode", self._ph_encode, count=self.total_calls)
            prof.add("cst", self._ph_cst, count=self.total_calls)
            prof.add("sequitur", self._ph_seq, count=self.total_calls)
            if self.timing:
                prof.add("timing", self._ph_timing, count=self.total_calls)
            if self._ph_mem:
                prof.add("mem", self._ph_mem)

        # Phase 1: CST merge (pairwise, log2 P) + grammar renumbering.
        with prof.phase("cst_merge") as ph_cst:
            merged_cst = merge_csts(self.csts)
            frozen: list[Grammar] = []
            for r, seq in enumerate(self.grammars):
                g = Grammar.freeze(seq)
                remap = merged_cst.remaps[r]
                frozen.append(g.remap_terminals(lambda t, m=remap: m[t]))

        # Phase 2: CFG identity check + merge + final Sequitur pass.
        with prof.phase("cfg_merge") as ph_cfg:
            cfg = merge_grammars(frozen, loop_detection=self.loop_detection,
                                 dedup=self.cfg_dedup)

        timing_d = timing_i = None
        if self.timing:
            with prof.phase("timing_merge"):
                frozen_t = [tc.freeze() for tc in self.timing]
                timing_d = merge_grammars([d for d, _ in frozen_t],
                                          loop_detection=self.loop_detection,
                                          dedup=self.cfg_dedup)
                timing_i = merge_grammars([i for _, i in frozen_t],
                                          loop_detection=self.loop_detection,
                                          dedup=self.cfg_dedup)

        # Phase 3: serialization to the on-disk format.
        with prof.phase("serialize"):
            trace = TraceFile(nprocs=self.nprocs, cst=merged_cst, cfg=cfg,
                              timing_duration=timing_d,
                              timing_interval=timing_i)
            blob = trace.to_bytes()

        phases = prof.phases()
        finalize_wall = (prof.wall("cst_merge") + prof.wall("cfg_merge")
                         + prof.wall("timing_merge") + prof.wall("serialize"))
        if self.obs.enabled:
            self.obs.counter("calls").inc(self.total_calls)
            self.obs.gauge("ranks").set(self.nprocs)
            self.obs.gauge("signatures").set(len(merged_cst))
            self.obs.gauge("unique_grammars").set(cfg.n_unique)
            self.obs.gauge("trace_bytes").set(len(blob))
            self.obs.timer("intra").add(self.time_intra,
                                        count=self.total_calls)
            self.obs.timer("total").add(self.time_intra + finalize_wall)

        return PilgrimResult(
            trace=trace,
            trace_bytes=blob,
            n_unique_grammars=cfg.n_unique,
            total_calls=self.total_calls,
            n_signatures=len(merged_cst),
            time_intra=self.time_intra,
            time_cst_merge=ph_cst.wall,
            time_cfg_merge=ph_cfg.wall,
            per_rank_calls=[g.n_input for g in self.grammars],
            phases=phases,
        )
