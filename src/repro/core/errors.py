"""Structured trace-format errors.

Pilgrim's headline property is *(near) lossless* tracing, so the trace
file is a contract: a reader must either produce exactly the records the
writer saw or fail loudly with a diagnosable error.  Every read path in
:mod:`repro.core.packing`, :mod:`repro.core.trace_format`, and
:mod:`repro.core.decoder` raises one of these instead of leaking raw
``IndexError``/``KeyError`` (or, worse, returning silently wrong data).

The hierarchy bottoms out on :class:`ValueError` so callers that predate
the structured errors (``except ValueError``) keep working.
"""

from __future__ import annotations


class TraceFormatError(ValueError):
    """A trace blob violates the on-disk format contract."""


class TruncatedTraceError(TraceFormatError):
    """The blob ends before the structure it promises is complete."""


class ChecksumError(TraceFormatError):
    """A section's stored CRC32 does not match its bytes."""

    def __init__(self, section: str, stored: int, computed: int):
        super().__init__(
            f"{section} section checksum mismatch: "
            f"stored {stored:#010x}, computed {computed:#010x}")
        self.section = section
        self.stored = stored
        self.computed = computed


class UnsupportedVersionError(TraceFormatError):
    """The trace declares a format version this reader cannot parse."""

    def __init__(self, found: int, expected: int):
        super().__init__(
            f"unsupported trace version {found} (this reader "
            f"understands version {expected})")
        self.found = found
        self.expected = expected


class CorruptTraceError(TraceFormatError):
    """The blob is structurally inconsistent (bad tag, bad rule
    reference, impossible count, trailing bytes, ...)."""


class FrameFormatError(TraceFormatError):
    """An ingest-protocol frame violates the wire-format contract (bad
    magic, unknown frame kind, failed CRC, truncated payload).  Lives in
    the same hierarchy as the trace errors because the framing layer
    reuses the v2 section writers — and because the server loop's
    contract is the decoder's: structured errors only, never a crash."""


class StoreFormatError(TraceFormatError):
    """A trace-store artifact (run manifest, run index, refcount
    sidecar) violates its on-disk contract.  Lives in the trace-error
    hierarchy because the store reuses the v2 section writers — and
    because the store's read paths inherit the decoder's contract:
    structured errors only, never a bare ``KeyError`` and never a
    leaked ``FileNotFoundError``."""


class MissingObjectError(StoreFormatError):
    """A manifest references a content hash the object store does not
    hold (deleted out-of-band, or a corrupt hash ref).  Carries the
    digest so callers can report exactly which blob is gone."""

    def __init__(self, digest: str, detail: str = ""):
        super().__init__(
            f"object {digest[:12]}… is not in the store"
            + (f" ({detail})" if detail else ""))
        self.digest = digest


class StoreIntegrityError(StoreFormatError):
    """A stored object's bytes no longer hash to its address (on-disk
    corruption caught by the read-path re-verification)."""

    def __init__(self, digest: str, computed: str):
        super().__init__(
            f"object {digest[:12]}… failed integrity re-verification: "
            f"stored bytes hash to {computed[:12]}…")
        self.digest = digest
        self.computed = computed


class ReplayFormatError(CorruptTraceError):
    """A trace parsed cleanly but cannot be *re-executed*: its decoded
    call stream is internally inconsistent (a request completed twice,
    an unknown communicator id, a construction order that derives
    different ids than were recorded, a call with no replay handler).
    Lives in the trace-error hierarchy because the replay engine is a
    read path like any other — fuzzed traces must produce structured
    errors, never a bare ``MpiSimError``/``AssertionError``/crash."""


class MissingRankError(CorruptTraceError):
    """A rank inside ``[0, nprocs)`` has no data in the trace — its
    entry is absent from the CFG rank map (typically a salvaged or
    degraded trace whose shard was lost).  Carries the rank so callers
    like ``verify --allow-degraded`` can skip it deliberately."""

    def __init__(self, rank: int, detail: str = ""):
        super().__init__(
            f"rank {rank} has no data in this trace"
            + (f" ({detail})" if detail else ""))
        self.rank = rank
