"""Pilgrim's binary trace format (writer + reader).

Layout (all integers are varints, see :mod:`repro.core.packing`)::

    magic  b"PILG"            4 bytes
    version                   1 byte
    flags                     1 byte   (bit0: lossy timing sections present;
                                        bit1: sections are zlib-compressed)
    nprocs
    -- CST section --
    n_signatures, then per entry: signature value, count, duration sum
    -- CFG section --
    n_top_rules               (rules [0, n_top) are the merged top level)
    n_unique_grammars, then per grammar: its rule count
    final grammar             (rule array, see Grammar.write_to; the rank ->
                               sub-grammar assignment is the start rule)
    -- optional timing sections (flags bit0) --
    duration: same layout as the CFG section
    interval: same layout as the CFG section

Sections are individually deflate-compressed by default (length-prefixed),
mirroring the generic final-compression pass real trace formats apply —
without it, the per-rank Alltoallv count arrays of IS alone would dwarf
the paper's reported sizes (58KB at 1024 ranks).  All size figures the
benchmarks report are ``len()`` of these bytes — honest on-disk sizes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

from .cst import MergedCST
from .grammar import Grammar
from .interproc import CFGMergeResult
from .packing import Reader, write_uvarint
from .sequitur import Sequitur

MAGIC = b"PILG"
VERSION = 1

FLAG_TIMING = 1
FLAG_COMPRESSED = 2

#: zlib level used for section compression (balanced, like zstd defaults)
ZLIB_LEVEL = 6


def _emit_section(out: bytearray, payload: bytes, compress: bool) -> None:
    if compress:
        payload = zlib.compress(payload, ZLIB_LEVEL)
    write_uvarint(out, len(payload))
    out.extend(payload)


def _take_section(r: Reader, compressed: bool) -> Reader:
    n = r.read_uvarint()
    blob = r.read_bytes(n)
    if compressed:
        blob = zlib.decompress(blob)
    return Reader(blob)


def _write_cfg_section(out: bytearray, merge: CFGMergeResult) -> None:
    n_top = len(merge.final.rules) - sum(len(g.rules) for g in merge.unique)
    write_uvarint(out, n_top)
    write_uvarint(out, len(merge.unique))
    for g in merge.unique:
        write_uvarint(out, len(g.rules))
    merge.final.write_to(out)
    # NB: no separate rank map — the rank -> sub-grammar assignment lives
    # in the merged start rule (as in the paper's S -> S1 S2 ... form,
    # compressed by the final Sequitur pass) and is re-derived on read.


def _read_cfg_section(r: Reader) -> CFGMergeResult:
    n_top = r.read_uvarint()
    n_unique = r.read_uvarint()
    rule_counts = [r.read_uvarint() for _ in range(n_unique)]
    final = Grammar.from_reader(r)
    # recover the per-unique sub-grammars from the spliced rule space
    unique: list[Grammar] = []
    bases: list[int] = []
    base = n_top
    for count in rule_counts:
        bases.append(base)
        rules = []
        for rule in final.rules[base:base + count]:
            rules.append(tuple(
                (v + base if v < 0 else v, e) for v, e in rule))
        unique.append(Grammar(tuple(rules)))
        base += count
    # derive the rank -> uid sequence by expanding the top-level rules,
    # treating references to sub-grammar start rules as uid terminals
    base_to_uid = {b: uid for uid, b in enumerate(bases)}
    memo: dict[int, list[int]] = {}

    def expand_top(idx: int) -> list[int]:
        got = memo.get(idx)
        if got is not None:
            return got
        out: list[int] = []
        for v, e in final.rules[idx]:
            ref = -v - 1
            if v >= 0:
                raise ValueError(
                    f"top rule {idx} holds a raw terminal {v}; corrupt CFG")
            if ref in base_to_uid:
                out.extend([base_to_uid[ref]] * e)
            else:
                sub = expand_top(ref)
                out.extend(sub if e == 1 else sub * e)
        memo[idx] = out
        return out

    rank_uid = expand_top(0) if n_top else []
    return CFGMergeResult(final=final, rank_uid=rank_uid, unique=unique)


@dataclass
class TraceFile:
    """A fully parsed Pilgrim trace."""

    nprocs: int
    cst: MergedCST
    cfg: CFGMergeResult
    timing_duration: Optional[CFGMergeResult] = None
    timing_interval: Optional[CFGMergeResult] = None

    # -- writing ---------------------------------------------------------------------

    def to_bytes(self, compress: bool = True) -> bytes:
        out = bytearray()
        out.extend(MAGIC)
        out.append(VERSION)
        flags = (FLAG_TIMING if self.timing_duration is not None else 0) \
            | (FLAG_COMPRESSED if compress else 0)
        out.append(flags)
        write_uvarint(out, self.nprocs)
        for payload in self._section_payloads():
            _emit_section(out, payload, compress)
        return bytes(out)

    def _section_payloads(self) -> list[bytes]:
        cst_b = bytearray()
        self.cst.write_to(cst_b)
        cfg_b = bytearray()
        _write_cfg_section(cfg_b, self.cfg)
        payloads = [bytes(cst_b), bytes(cfg_b)]
        if self.timing_duration is not None:
            d = bytearray()
            _write_cfg_section(d, self.timing_duration)
            i = bytearray()
            _write_cfg_section(i, self.timing_interval)
            payloads.extend((bytes(d), bytes(i)))
        return payloads

    @classmethod
    def from_bytes(cls, data: bytes) -> "TraceFile":
        if data[:4] != MAGIC:
            raise ValueError("not a Pilgrim trace (bad magic)")
        if data[4] != VERSION:
            raise ValueError(f"unsupported trace version {data[4]}")
        flags = data[5]
        compressed = bool(flags & FLAG_COMPRESSED)
        r = Reader(data, 6)
        nprocs = r.read_uvarint()
        cst = MergedCST.read_from(_take_section(r, compressed))
        cfg = _read_cfg_section(_take_section(r, compressed))
        td = ti = None
        if flags & FLAG_TIMING:
            td = _read_cfg_section(_take_section(r, compressed))
            ti = _read_cfg_section(_take_section(r, compressed))
        return cls(nprocs=nprocs, cst=cst, cfg=cfg,
                   timing_duration=td, timing_interval=ti)

    # -- size accounting ----------------------------------------------------------------

    def section_sizes(self, compress: bool = True) -> dict[str, int]:
        """On-disk byte size per section (what the figures plot)."""
        payloads = self._section_payloads()
        names = ["cst", "cfg"]
        if self.timing_duration is not None:
            names.extend(("timing_duration", "timing_interval"))
        sizes = {"header": 6 + len(_uvarint_bytes(self.nprocs))}
        for name, payload in zip(names, payloads):
            section = bytearray()
            _emit_section(section, payload, compress)
            sizes[name] = len(section)
        sizes["total"] = sum(sizes.values())
        return sizes


def _uvarint_bytes(n: int) -> bytes:
    out = bytearray()
    write_uvarint(out, n)
    return bytes(out)
