"""Pilgrim's binary trace format (writer + reader).

Layout (all integers are varints, see :mod:`repro.core.packing`)::

    magic  b"PILG"            4 bytes
    version                   1 byte   (currently 2)
    flags                     1 byte   (bit0: lossy timing sections present;
                                        bit1: sections are zlib-compressed)
    nprocs
    -- per section: --
    payload length            varint
    crc32 of the payload      4 bytes little-endian
    payload
    -- section order --
    CST:  n_signatures, then per entry: signature value, count, duration sum
    CFG:  n_top_rules          (rules [0, n_top) are the merged top level)
          n_unique_grammars, then per grammar: its rule count
          final grammar        (rule array, see Grammar.write_to; the rank ->
                                sub-grammar assignment is the start rule)
    -- optional timing sections (flags bit0) --
    duration: same layout as the CFG section
    interval: same layout as the CFG section
    -- optional timing-meta section (flags bit2, written with bit0) --
    meta: the binning bases the trace was recorded with (default base
          plus the per-function overrides), see TimingMeta — without
          them reconstruction cannot honour per-function bases

Sections are individually deflate-compressed by default (length-prefixed),
mirroring the generic final-compression pass real trace formats apply —
without it, the per-rank Alltoallv count arrays of IS alone would dwarf
the paper's reported sizes (58KB at 1024 ranks).  All size figures the
benchmarks report are ``len()`` of these bytes — honest on-disk sizes,
including the checksum overhead (4 bytes per section).

Version 2 makes "lossless" a *checked* property: every section carries a
CRC32 over its stored bytes, the reader verifies it before parsing, and
every failure mode raises a structured :class:`TraceFormatError` subclass
(see :mod:`repro.core.errors`) — never a raw ``IndexError`` and never a
silently wrong record.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..resilience.salvage import SalvageReport
from .cst import MergedCST
from .errors import (ChecksumError, CorruptTraceError, TraceFormatError,
                     TruncatedTraceError, UnsupportedVersionError)
from .grammar import Grammar
from .interproc import CFGMergeResult
from .packing import Reader, write_uvarint
from .timing import TimingMeta

MAGIC = b"PILG"
VERSION = 2
HEADER_FIXED = 6  # magic + version + flags; nprocs follows as a varint

FLAG_TIMING = 1
FLAG_COMPRESSED = 2
#: a timing-meta section follows the timing pair; newly written lossy
#: traces always set it, older blobs without it reconstruct with the
#: default base (the pre-fix behaviour)
FLAG_TIMING_META = 4
_KNOWN_FLAGS = FLAG_TIMING | FLAG_COMPRESSED | FLAG_TIMING_META

#: zlib level used for section compression (balanced, like zstd defaults)
ZLIB_LEVEL = 6

#: bytes each section spends on its CRC32 (accounted in section_sizes)
CRC_BYTES = 4


def emit_section(out: bytearray, payload: bytes, compress: bool) -> None:
    if compress:
        payload = zlib.compress(payload, ZLIB_LEVEL)
    write_uvarint(out, len(payload))
    out.extend(struct.pack("<I", zlib.crc32(payload)))
    out.extend(payload)


def take_section(r: Reader, compressed: bool, name: str) -> Reader:
    n = r.read_uvarint()
    (stored,) = struct.unpack("<I", r.read_bytes(CRC_BYTES))
    blob = r.read_bytes(n)
    computed = zlib.crc32(blob)
    if computed != stored:
        raise ChecksumError(name, stored, computed)
    if compressed:
        try:
            blob = zlib.decompress(blob)
        except zlib.error as e:
            raise CorruptTraceError(
                f"{name} section passed its checksum but is not valid "
                f"zlib data ({e})") from None
    return Reader(blob)


def _write_cfg_section(out: bytearray, merge: CFGMergeResult) -> None:
    n_top = len(merge.final.rules) - sum(len(g.rules) for g in merge.unique)
    write_uvarint(out, n_top)
    write_uvarint(out, len(merge.unique))
    for g in merge.unique:
        write_uvarint(out, len(g.rules))
    merge.final.write_to(out)
    # NB: no separate rank map — the rank -> sub-grammar assignment lives
    # in the merged start rule (as in the paper's S -> S1 S2 ... form,
    # compressed by the final Sequitur pass) and is re-derived on read.


def _read_cfg_section(r: Reader, name: str = "CFG") -> CFGMergeResult:
    n_top = r.read_uvarint()
    n_unique = r.read_uvarint()
    if n_unique > r.remaining():
        raise CorruptTraceError(
            f"{name} section claims {n_unique} unique grammars but only "
            f"{r.remaining()} bytes remain")
    rule_counts = [r.read_uvarint() for _ in range(n_unique)]
    final = Grammar.from_reader(r)
    if n_top + sum(rule_counts) != len(final.rules):
        raise CorruptTraceError(
            f"{name} section rule accounting is inconsistent: "
            f"{n_top} top + {sum(rule_counts)} sub-grammar rules != "
            f"{len(final.rules)} total")
    # recover the per-unique sub-grammars from the spliced rule space
    unique: list[Grammar] = []
    bases: list[int] = []
    base = n_top
    for count in rule_counts:
        bases.append(base)
        rules = []
        for rule in final.rules[base:base + count]:
            rules.append(tuple(
                (v + base if v < 0 else v, e) for v, e in rule))
        unique.append(Grammar(tuple(rules)))
        base += count
    # derive the rank -> uid sequence by expanding the top-level rules,
    # treating references to sub-grammar start rules as uid terminals
    base_to_uid = {b: uid for uid, b in enumerate(bases)}
    memo: dict[int, list[int]] = {}

    def expand_top(idx: int, active: frozenset) -> list[int]:
        got = memo.get(idx)
        if got is not None:
            return got
        if idx in active:
            raise CorruptTraceError(
                f"{name} section top rule {idx} is cyclic")
        out: list[int] = []
        for v, e in final.rules[idx]:
            ref = -v - 1
            if v >= 0:
                raise CorruptTraceError(
                    f"{name} section top rule {idx} holds a raw terminal "
                    f"{v}; corrupt CFG")
            if ref in base_to_uid:
                out.extend([base_to_uid[ref]] * e)
            elif ref >= len(final.rules):
                raise CorruptTraceError(
                    f"{name} section top rule {idx} references missing "
                    f"rule {ref}")
            else:
                sub = expand_top(ref, active | {idx})
                out.extend(sub if e == 1 else sub * e)
        memo[idx] = out
        return out

    rank_uid = expand_top(0, frozenset()) if n_top else []
    return CFGMergeResult(final=final, rank_uid=rank_uid, unique=unique)


@dataclass
class TraceFile:
    """A fully parsed Pilgrim trace."""

    nprocs: int
    cst: MergedCST
    cfg: CFGMergeResult
    timing_duration: Optional[CFGMergeResult] = None
    timing_interval: Optional[CFGMergeResult] = None
    #: binning bases of the timing sections; None on traces predating
    #: the meta section (readers then fall back to the default base)
    timing_meta: Optional[TimingMeta] = None
    #: set by ``from_bytes(salvage=True)`` when anything was dropped;
    #: excluded from equality so a cleanly-salvaged trace compares equal
    salvage: Optional[SalvageReport] = field(default=None, compare=False,
                                             repr=False)

    # -- writing ---------------------------------------------------------------------

    def to_bytes(self, compress: bool = True) -> bytes:
        out = bytearray()
        out.extend(MAGIC)
        out.append(VERSION)
        flags = (FLAG_COMPRESSED if compress else 0)
        if self.timing_duration is not None:
            flags |= FLAG_TIMING | FLAG_TIMING_META
        out.append(flags)
        write_uvarint(out, self.nprocs)
        for payload in self._section_payloads():
            emit_section(out, payload, compress)
        return bytes(out)

    def _section_payloads(self) -> list[bytes]:
        cst_b = bytearray()
        self.cst.write_to(cst_b)
        cfg_b = bytearray()
        _write_cfg_section(cfg_b, self.cfg)
        payloads = [bytes(cst_b), bytes(cfg_b)]
        if self.timing_duration is not None:
            d = bytearray()
            _write_cfg_section(d, self.timing_duration)
            i = bytearray()
            _write_cfg_section(i, self.timing_interval)
            m = bytearray()
            (self.timing_meta or TimingMeta()).write_to(m)
            payloads.extend((bytes(d), bytes(i), bytes(m)))
        return payloads

    @classmethod
    def from_bytes(cls, data: bytes, salvage: bool = False) -> "TraceFile":
        """Parse a trace blob.

        ``salvage=True`` switches from all-or-nothing to best-effort:
        every section that passes its CRC and parses is recovered, every
        section that does not is dropped and recorded in the result's
        ``salvage`` :class:`~repro.resilience.salvage.SalvageReport`
        (a lost CFG or CST loses every rank; a lost timing pair only
        loses timing; a rank map shorter than ``nprocs`` loses the
        missing ranks).  The header must still be intact — without it
        there is nothing to salvage.
        """
        if salvage:
            return cls._salvage_from_bytes(data)
        if len(data) < HEADER_FIXED:
            raise TruncatedTraceError(
                f"trace of {len(data)} bytes is shorter than the "
                f"{HEADER_FIXED}-byte header")
        if data[:4] != MAGIC:
            raise TraceFormatError("not a Pilgrim trace (bad magic)")
        if data[4] != VERSION:
            raise UnsupportedVersionError(data[4], VERSION)
        flags = data[5]
        if flags & ~_KNOWN_FLAGS:
            raise CorruptTraceError(
                f"unknown flag bits in {flags:#04x} "
                f"(known mask {_KNOWN_FLAGS:#04x})")
        compressed = bool(flags & FLAG_COMPRESSED)
        try:
            r = Reader(data, HEADER_FIXED)
            nprocs = r.read_uvarint()
            cst = MergedCST.read_from(take_section(r, compressed, "CST"))
            cfg = _read_cfg_section(take_section(r, compressed, "CFG"))
            td = ti = tm = None
            if flags & FLAG_TIMING_META and not flags & FLAG_TIMING:
                raise CorruptTraceError(
                    "timing-meta flag set without timing sections")
            if flags & FLAG_TIMING:
                td = _read_cfg_section(
                    take_section(r, compressed, "timing-duration"),
                    "timing-duration")
                ti = _read_cfg_section(
                    take_section(r, compressed, "timing-interval"),
                    "timing-interval")
                if flags & FLAG_TIMING_META:
                    tm = TimingMeta.read_from(
                        take_section(r, compressed, "timing-meta"))
            if not r.exhausted:
                raise CorruptTraceError(
                    f"{len(data) - r.pos} trailing bytes after the last "
                    f"section")
        except TraceFormatError:
            raise
        except (IndexError, KeyError, ValueError, OverflowError,
                RecursionError, MemoryError, struct.error,
                zlib.error) as e:
            # safety net: no parsing accident may escape as a raw
            # exception — the decoder's contract is structured errors only
            raise CorruptTraceError(
                f"malformed trace ({type(e).__name__}: {e})") from e
        if len(cfg.rank_uid) != nprocs:
            raise CorruptTraceError(
                f"CFG rank map covers {len(cfg.rank_uid)} ranks but the "
                f"header declares {nprocs}")
        return cls(nprocs=nprocs, cst=cst, cfg=cfg,
                   timing_duration=td, timing_interval=ti, timing_meta=tm)

    @classmethod
    def _salvage_from_bytes(cls, data: bytes) -> "TraceFile":
        report = SalvageReport()
        if len(data) < HEADER_FIXED:
            raise TruncatedTraceError(
                f"trace of {len(data)} bytes is shorter than the "
                f"{HEADER_FIXED}-byte header — nothing to salvage")
        if data[:4] != MAGIC:
            raise TraceFormatError("not a Pilgrim trace (bad magic)")
        if data[4] != VERSION:
            raise UnsupportedVersionError(data[4], VERSION)
        flags = data[5]
        if flags & ~_KNOWN_FLAGS:
            raise CorruptTraceError(
                f"unknown flag bits in {flags:#04x} "
                f"(known mask {_KNOWN_FLAGS:#04x})")
        compressed = bool(flags & FLAG_COMPRESSED)
        r = Reader(data, HEADER_FIXED)
        try:
            nprocs = r.read_uvarint()
        except TraceFormatError:
            raise
        except (IndexError, ValueError) as e:
            raise CorruptTraceError(
                f"unreadable nprocs ({e}) — nothing to salvage") from e

        truncated = False

        def read_sec(name: str, parse: Callable[[Reader], object]):
            nonlocal truncated
            if truncated:
                report.lose_section(name, "unreachable past truncation")
                return None
            try:
                return parse(take_section(r, compressed, name))
            except TruncatedTraceError as e:
                truncated = True
                report.lose_section(name, str(e))
                return None
            except (TraceFormatError, IndexError, KeyError, ValueError,
                    OverflowError, RecursionError, MemoryError,
                    struct.error, zlib.error) as e:
                report.lose_section(name, f"{type(e).__name__}: {e}")
                return None

        cst = read_sec("CST", MergedCST.read_from)
        cfg = read_sec("CFG", _read_cfg_section)
        td = ti = tm = None
        if flags & FLAG_TIMING:
            td = read_sec("timing-duration",
                          lambda rr: _read_cfg_section(rr, "timing-duration"))
            ti = read_sec("timing-interval",
                          lambda rr: _read_cfg_section(rr, "timing-interval"))
            if flags & FLAG_TIMING_META:
                tm = read_sec("timing-meta", TimingMeta.read_from)
                if tm is None and (td is not None or ti is not None):
                    # grammars survive; reconstruction falls back to the
                    # default base (already reported by read_sec)
                    report.note("timing-meta lost; reconstruction will "
                                "use the default base")
            if td is None or ti is None:
                # the pair is only meaningful together
                if td is not None or ti is not None:
                    report.lose_section("timing", "half of the pair lost")
                td = ti = None
        if not truncated and not r.exhausted:
            report.note(f"{len(data) - r.pos} trailing bytes ignored")

        if cst is None:
            # CFG terminals index the CST: without it nothing decodes
            cst = MergedCST(sigs=[], counts=[], dur_sums=[], remaps=[])
            cfg = None
        if cfg is None:
            cfg = CFGMergeResult(final=Grammar(((),)), rank_uid=[],
                                 unique=[])
            for rank in range(nprocs):
                report.lose_rank(rank)
        if len(cfg.rank_uid) > nprocs:
            report.note(
                f"rank map covers {len(cfg.rank_uid)} ranks, header "
                f"declares {nprocs}; extra entries dropped")
            cfg.rank_uid = cfg.rank_uid[:nprocs]
        elif len(cfg.rank_uid) < nprocs:
            for rank in range(len(cfg.rank_uid), nprocs):
                report.lose_rank(rank, reason="absent from rank map")
        if not (report.degraded or report.notes):
            report = None
        return cls(nprocs=nprocs, cst=cst, cfg=cfg, timing_duration=td,
                   timing_interval=ti, timing_meta=tm, salvage=report)

    # -- size accounting ----------------------------------------------------------------

    def section_sizes(self, compress: bool = True) -> dict[str, int]:
        """On-disk byte size per section (what the figures plot).

        Section sizes include each section's length prefix and 4-byte
        CRC32; ``header`` is the magic/version/flags/nprocs preamble.
        """
        payloads = self._section_payloads()
        names = ["cst", "cfg"]
        if self.timing_duration is not None:
            names.extend(("timing_duration", "timing_interval",
                          "timing_meta"))
        sizes = {"header": HEADER_FIXED + len(_uvarint_bytes(self.nprocs))}
        for name, payload in zip(names, payloads):
            section = bytearray()
            emit_section(section, payload, compress)
            sizes[name] = len(section)
        sizes["total"] = sum(sizes.values())
        return sizes

    def section_hashes(self, compress: bool = True) -> dict[str, str]:
        """SHA-256 per serialized section — what the trace store would
        address this trace's sections under (see :func:`section_hashes`
        for the blob-level equivalent)."""
        return section_hashes(self.to_bytes(compress))


def section_spans(data: bytes) -> dict[str, tuple[int, int]]:
    """Byte spans ``name -> (start, end)`` of every region in a valid
    trace blob (header fields, then per section its length prefix, CRC,
    and payload).  The corruption fuzzer aims its mutations at these
    boundaries; ``repro info`` could render them too."""
    if len(data) < HEADER_FIXED or data[:4] != MAGIC:
        raise TraceFormatError("not a Pilgrim trace (bad magic)")
    flags = data[5]
    spans: dict[str, tuple[int, int]] = {
        "magic": (0, 4), "version": (4, 5), "flags": (5, 6)}
    r = Reader(data, HEADER_FIXED)
    r.read_uvarint()
    spans["nprocs"] = (HEADER_FIXED, r.pos)
    names = ["cst", "cfg"]
    if flags & FLAG_TIMING:
        names.extend(("timing_duration", "timing_interval"))
    if flags & FLAG_TIMING_META:
        names.append("timing_meta")
    for name in names:
        start = r.pos
        n = r.read_uvarint()
        spans[f"{name}.len"] = (start, r.pos)
        spans[f"{name}.crc"] = (r.pos, r.pos + CRC_BYTES)
        r.read_bytes(CRC_BYTES)
        spans[f"{name}.payload"] = (r.pos, r.pos + n)
        r.read_bytes(n)
    return spans


def split_sections(data: bytes) -> tuple[bytes, list[tuple[str, bytes]]]:
    """Split a v2 blob into ``(header_bytes, [(name, section_bytes)])``
    where each section's bytes cover its length prefix, CRC, and
    payload — concatenating the header with the sections reproduces
    *data* exactly (the trace store's reassembly invariant).

    Only the framing is walked (no payload parsing); damage inside a
    section surfaces later through its CRC.  Trailing bytes are
    rejected so a reassembled blob can never silently grow.
    """
    spans = section_spans(data)
    names = [n[:-len(".len")] for n in spans if n.endswith(".len")]
    sections = []
    end = HEADER_FIXED
    for name in names:
        start = spans[f"{name}.len"][0]
        end = spans[f"{name}.payload"][1]
        sections.append((name, data[start:end]))
    if end != len(data):
        raise CorruptTraceError(
            f"{len(data) - end} trailing bytes after the last section")
    header_end = spans[f"{names[0]}.len"][0] if names else len(data)
    return data[:header_end], sections


def section_hashes(data: bytes) -> dict[str, str]:
    """SHA-256 content hash per section of a valid v2 blob — the free
    content addresses the trace store keys its blobs on (section bytes
    are deterministic, so identical runs hash identically)."""
    import hashlib
    _, sections = split_sections(data)
    return {name: hashlib.sha256(blob).hexdigest()
            for name, blob in sections}


def _uvarint_bytes(n: int) -> bytes:
    out = bytearray()
    write_uvarint(out, n)
    return bytes(out)
