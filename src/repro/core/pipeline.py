"""The explicit three-stage compression pipeline (shard → reduce →
serialize), with optional resilience.

Stage 1 (**shard**) freezes every rank's intra-process state into a
self-contained :class:`~repro.core.shard.RankShard`.  Stage 2
(**reduce**) folds the shards through :func:`~repro.core.shard.
merge_shards` in ceil(log2 P) pairwise levels — the paper's Fig 3/4 tree
reduction — serially by default or in parallel over a
:class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=N``).  Because
the merge is associative (see :mod:`repro.core.shard`), every tree shape
and every ``jobs`` setting yields byte-identical traces.  Stage 3
(**serialize**) runs the final CFG dedup/merge/Sequitur pass over the
reduced shard's per-rank grammars and emits the v2 on-disk format.

**Resilience** (``faults=`` / ``retry=``): every freeze, pair-merge, and
the final serialize runs under a :class:`~repro.resilience.retry.
TaskSupervisor` — per-task deadlines on pooled merges, bounded
exponential backoff with seeded jitter, re-dispatch of a failed worker's
subtree (the retry recomputes the merge serially in the parent), and a
circuit breaker that abandons the process pool for serial merging after
consecutive worker deaths.  A task whose retry budget is exhausted does
not abort the run: its rank span is replaced by a placeholder shard and
recorded in a :class:`~repro.resilience.salvage.SalvageReport`, and the
result is marked ``degraded``.  The counters surface through the
``pipeline.*`` metrics scope (``retries``, ``worker_deaths``,
``breaker_trips``, ``degraded``).  When neither faults nor a retry
policy are armed, every stage takes the exact pre-resilience code path
— byte-identical output, no added work on the hot path.

Each reduction level is timed as a ``merge.level.<k>`` phase in the
attached :class:`~repro.obs.PhaseProfiler`, so ``repro stats`` renders
the per-level breakdown of the Fig 8 decomposition.

**Span collection** (``recorder=``): when a :class:`~repro.obs.
SpanRecorder` is attached, every pair merge becomes a ``merge.task``
span nested under its ``merge.level.<k>`` phase span.  Pooled merges
run through :func:`_worker_merge`, which builds a fresh recorder in the
worker, wraps the merge in a span, and ships the exported batch plus
counter/timer deltas back with the result; the parent splices the batch
into its own tree (worker pids preserved, so exporters render one track
per worker) and folds the deltas into the ``pipeline.*`` scope.  Serial
merges record the identical span and metrics parent-side, so ``jobs=1``
and ``jobs=N`` runs report the same ``merge.tasks`` /
``merge.task_seconds`` totals.  On the resilient path a result's
telemetry is absorbed only after it survives every fault check, so a
killed or corrupted attempt can never leave duplicate spans behind.

:func:`tree_reduce` is generic (any associative ``merge(a, b)``), so
later subsystems — timing reduction, multi-trace aggregation — can reuse
the scheduler unchanged.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, TypeVar

from ..obs import NULL_RECORDER, PhaseProfiler, SpanRecorder
from ..resilience.faults import (FaultInjector, WorkerDiedError,
                                 WorkerStallError, arm)
from ..resilience.retry import RetryPolicy, TaskSupervisor
from ..resilience.salvage import SalvageReport
from .errors import CorruptTraceError, TraceFormatError
from .interproc import CFGMergeResult, merge_grammars
from .shard import GrammarSet, RankShard, merge_shards
from .trace_format import TraceFile

T = TypeVar("T")

#: what the supervisor retries: injected faults all subclass one of
#: these, and their real-world counterparts (transient I/O, allocation
#: failure, dead/hung worker, CRC-detected corruption) are exactly the
#: failures a retry can plausibly cure.  Anything else is a bug and
#: propagates immediately.
RETRYABLE = (OSError, MemoryError, TraceFormatError, WorkerDiedError)


def _pair_attrs(a, b) -> dict[str, Any]:
    """Span attributes identifying a merge pair (rank-span based when the
    items are shards; empty for generic reductions)."""
    base = getattr(a, "base_rank", None)
    if base is None:
        return {}
    return {"base_rank": base,
            "nranks": getattr(a, "nranks", 0) + getattr(b, "nranks", 0)}


def _worker_merge(merge: Callable, a, b, site: str):
    """Pool-side pair merge with telemetry: runs in the worker process,
    wraps the merge in a ``merge.task`` span recorded by a fresh
    worker-local :class:`SpanRecorder`, and returns ``(result, report)``
    where the report carries the exported span batch plus counter/timer
    deltas for the parent to splice and fold."""
    rec = SpanRecorder()
    t0 = _time.perf_counter()
    with rec.span("merge.task", scope="worker", site=site,
                  **_pair_attrs(a, b)):
        out = merge(a, b)
    dt = _time.perf_counter() - t0
    report = {"pid": rec.pid, "spans": rec.export(),
              "counters": {"merge.tasks": 1},
              "timers": {"merge.task_seconds": (1, dt)}}
    return out, report


def _absorb_report(report: Optional[dict[str, Any]],
                   recorder: SpanRecorder, scope) -> None:
    """Splice a worker's span batch under the currently open span and
    fold its metric deltas into *scope*."""
    if report is None:
        return
    recorder.splice(report.get("spans", ()))
    if scope is not None and scope.enabled:
        for name, n in report.get("counters", {}).items():
            scope.counter(name).inc(n)
        for name, (count, seconds) in report.get("timers", {}).items():
            scope.timer(name).add(seconds, count)


def _count_task(scope, seconds: float) -> None:
    if scope is not None and scope.enabled:
        scope.counter("merge.tasks").inc()
        scope.timer("merge.task_seconds").add(seconds)


def _local_merge(merge: Callable, a, b, site: str,
                 recorder: SpanRecorder, scope):
    """Parent-side pair merge recording the same span and metrics a
    pooled worker would report, so serial and pooled runs produce
    identical ``merge.tasks`` / ``merge.task_seconds`` totals."""
    t0 = _time.perf_counter()
    with recorder.span("merge.task", scope="pipeline", site=site,
                       **_pair_attrs(a, b)):
        out = merge(a, b)
    _count_task(scope, _time.perf_counter() - t0)
    return out


def _merge_level(items: list, merge: Callable, pool, *, site: str = "",
                 recorder: SpanRecorder = NULL_RECORDER,
                 scope=None) -> list:
    """One reduction level: merge adjacent pairs, pass an odd tail
    through unchanged.  With a pool, pair merges run concurrently; the
    gather is in order, so the next level sees a deterministic list.
    With telemetry enabled, each pair merge is a ``merge.task`` span
    (worker-recorded and spliced for pooled merges)."""
    collect = recorder.enabled or (scope is not None and scope.enabled)
    pairs = [(items[i], items[i + 1])
             for i in range(0, len(items) - 1, 2)]
    if pool is not None:
        if collect:
            futures = [pool.submit(_worker_merge, merge, a, b, site)
                       for a, b in pairs]
            merged = []
            for f in futures:
                out, report = f.result()
                _absorb_report(report, recorder, scope)
                merged.append(out)
        else:
            futures = [pool.submit(merge, a, b) for a, b in pairs]
            merged = [f.result() for f in futures]
    elif collect:
        merged = [_local_merge(merge, a, b, site, recorder, scope)
                  for a, b in pairs]
    else:
        merged = [merge(a, b) for a, b in pairs]
    if len(items) % 2:
        merged.append(items[-1])
    return merged


def tree_reduce(items: Sequence[T], merge: Callable[[T, T], T], *,
                jobs: int = 1,
                profiler: Optional[PhaseProfiler] = None,
                phase_prefix: str = "merge.level",
                recorder: Optional[SpanRecorder] = None,
                scope=None) -> T:
    """Fold *items* with an associative *merge* in ceil(log2 N) pairwise
    levels.

    ``jobs=1`` runs serially in-process; ``jobs>1`` dispatches each
    level's pair merges to a process pool (*merge* must then be a
    picklable module-level callable, as must the items).  Per-level wall
    time is recorded as ``<phase_prefix>.<k>`` phases in *profiler*;
    with a *recorder* (and/or metrics *scope*) attached, every pair
    merge additionally records a ``merge.task`` span and counts into
    ``merge.tasks`` / ``merge.task_seconds``.
    """
    if not items:
        raise ValueError("tree_reduce needs at least one item")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if profiler is None:
        profiler = PhaseProfiler()
    if recorder is None:
        recorder = profiler.recorder
    work = list(items)
    if len(work) == 1:
        return work[0]
    # a pool is pure overhead unless at least one level has >= 2 pairs
    use_pool = jobs > 1 and len(work) >= 4
    pool = ProcessPoolExecutor(max_workers=jobs) if use_pool else None
    try:
        level = 0
        while len(work) > 1:
            with profiler.phase(f"{phase_prefix}.{level}"):
                work = _merge_level(work, merge, pool,
                                    site=f"{phase_prefix}.{level}",
                                    recorder=recorder, scope=scope)
            level += 1
    finally:
        if pool is not None:
            pool.shutdown()
    return work[0]


@dataclass
class PipelineResult:
    """Everything the serialize stage produced."""

    trace: TraceFile
    trace_bytes: bytes
    cfg: CFGMergeResult
    shard: RankShard
    #: wall seconds: shard freeze + tree reduction (the "inter CST" cost)
    time_reduce: float = 0.0
    #: wall seconds: final CFG dedup/merge/Sequitur (the "inter CFG" cost)
    time_cfg: float = 0.0
    #: True when any rank span or section had to be abandoned; the
    #: salvage report then says exactly what was lost
    degraded: bool = False
    salvage: Optional[SalvageReport] = None


class TracePipeline:
    """Drives shard → reduce → serialize over a set of
    :class:`~repro.core.shard.RankCompressor` objects (or pre-built
    shards), timing every stage through *profiler*.

    ``faults`` arms a :class:`~repro.resilience.faults.FaultPlan` (or an
    already-armed injector, so the tracer and scheduler can share one);
    ``retry`` overrides the default :class:`~repro.resilience.retry.
    RetryPolicy`; ``scope`` is an optional ``repro.obs`` metrics scope
    (conventionally ``pipeline``) the resilience counters report into;
    ``recorder`` is an optional :class:`~repro.obs.SpanRecorder` the
    merge-task spans (including worker-side batches) collect into —
    defaults to the profiler's recorder so phase and task spans share
    one tree.
    """

    def __init__(self, *, loop_detection: bool = True,
                 cfg_dedup: bool = True, jobs: int = 1,
                 profiler: Optional[PhaseProfiler] = None,
                 faults=None, retry: Optional[RetryPolicy] = None,
                 scope=None, recorder: Optional[SpanRecorder] = None,
                 timing_meta=None):
        self.loop_detection = loop_detection
        self.cfg_dedup = cfg_dedup
        self.jobs = jobs
        #: :class:`~repro.core.timing.TimingMeta` persisted alongside the
        #: timing sections (the binning bases, needed at reconstruction)
        self.timing_meta = timing_meta
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.recorder = (recorder if recorder is not None
                         else self.profiler.recorder)
        self.injector: Optional[FaultInjector] = arm(faults)
        if retry is None and self.injector is not None:
            # tie the backoff jitter to the plan seed: one (plan, seed)
            # pair must replay the identical recovery sequence
            retry = RetryPolicy(seed=self.injector.plan.seed)
        self.retry_policy = retry
        self.supervisor: Optional[TaskSupervisor] = (
            TaskSupervisor(retry, RETRYABLE, scope,
                           recorder=self.recorder)
            if retry is not None else None)
        self.salvage = SalvageReport()
        self._scope = scope

    @property
    def _collect(self) -> bool:
        """Whether merge-task telemetry is being gathered at all."""
        return self.recorder.enabled or (
            self._scope is not None and self._scope.enabled)

    @property
    def resilient(self) -> bool:
        return self.supervisor is not None

    # -- stage 1: shard ----------------------------------------------------------------

    def shard(self, compressors) -> list[RankShard]:
        with self.profiler.phase("shard"):
            if not self.resilient:
                return [rc.freeze() for rc in compressors]
            return [self._freeze_resilient(rc) for rc in compressors]

    def _freeze_resilient(self, rc) -> RankShard:
        inj = self.injector
        timing = rc.timing is not None

        def thunk(attempt: int) -> RankShard:
            if inj is not None:
                inj.raise_failure("shard.freeze", rc.rank)
            shard = rc.freeze()
            if inj is not None:
                damaged = inj.corrupt_bytes("shard.freeze",
                                            shard.to_bytes(), rc.rank)
                if damaged is not None:
                    # transmit through the serialized form, as a real
                    # distributed pipeline would: the shard's per-section
                    # CRCs turn silent damage into a retryable error
                    shard = RankShard.from_bytes(damaged)
                    if shard.base_rank != rc.rank or shard.nranks != 1:
                        raise CorruptTraceError(
                            f"rank {rc.rank} shard came back claiming "
                            f"ranks [{shard.base_rank}, "
                            f"{shard.base_rank + shard.nranks})")
            return shard

        def on_exhausted(exc: BaseException) -> RankShard:
            self.salvage.lose_rank(
                rc.rank, rc.observed_calls,
                f"freeze abandoned ({type(exc).__name__}: {exc})")
            return RankShard.empty(rc.rank, 1, timing=timing)

        return self.supervisor.run(thunk, site="shard.freeze",
                                   on_exhausted=on_exhausted)

    # -- stage 2: reduce ---------------------------------------------------------------

    def reduce(self, shards: Sequence[RankShard]) -> RankShard:
        with self.profiler.phase("cst_merge"):
            if not shards:
                # a never-run tracer still finalizes to a valid empty trace
                return RankShard(base_rank=0, nranks=0, sigs=[], counts=[],
                                 dur_ns=[], cfg=GrammarSet(unique=[], uid=[]),
                                 calls=[])
            if not self.resilient:
                return tree_reduce(shards, merge_shards, jobs=self.jobs,
                                   profiler=self.profiler,
                                   recorder=self.recorder,
                                   scope=self._scope)
            return self._resilient_reduce(list(shards))

    def _resilient_reduce(self, work: list[RankShard]) -> RankShard:
        if len(work) == 1:
            return work[0]
        use_pool = self.jobs > 1 and len(work) >= 4
        pool = ProcessPoolExecutor(max_workers=self.jobs) \
            if use_pool else None
        try:
            level = 0
            while len(work) > 1:
                with self.profiler.phase(f"merge.level.{level}"):
                    work = self._resilient_level(work, level, pool)
                level += 1
        finally:
            if pool is not None:
                pool.shutdown()
        return work[0]

    def _resilient_level(self, items: list[RankShard], level: int,
                         pool) -> list[RankShard]:
        site = f"merge.level.{level}"
        sup = self.supervisor
        inj = self.injector
        deadline = self.retry_policy.deadline
        collect = self._collect
        pairs = [(items[i], items[i + 1])
                 for i in range(0, len(items) - 1, 2)]
        # submit the whole level up front (same shape as _merge_level);
        # once the breaker is open, pooled dispatch is over for this run
        futures: list = [None] * len(pairs)
        if pool is not None and not sup.broken:
            for i, (a, b) in enumerate(pairs):
                futures[i] = (pool.submit(_worker_merge, merge_shards,
                                          a, b, site) if collect
                              else pool.submit(merge_shards, a, b))

        merged: list[RankShard] = []
        for i, (a, b) in enumerate(pairs):
            fut = futures[i]

            def thunk(attempt: int, a=a, b=b, fut=fut) -> RankShard:
                if inj is not None:
                    inj.raise_failure(site)
                report = None
                t0 = _time.perf_counter()
                if attempt == 0 and fut is not None and not sup.broken:
                    try:
                        res = fut.result(timeout=deadline)
                    except _FuturesTimeout:
                        raise WorkerStallError(
                            f"merge worker blew its {deadline}s deadline "
                            f"at {site}") from None
                    except BrokenProcessPool as e:
                        raise WorkerDiedError(
                            f"merge worker died at {site}: {e}") from e
                    out, report = res if collect else (res, None)
                else:
                    # re-dispatch of the failed subtree: recompute the
                    # pair serially in the parent, which cannot die
                    out = merge_shards(a, b)
                dt = _time.perf_counter() - t0
                if inj is not None:
                    damaged = inj.corrupt_bytes(site, out.to_bytes())
                    if damaged is not None:
                        out = RankShard.from_bytes(damaged)
                        if out.base_rank != a.base_rank or \
                                out.nranks != a.nranks + b.nranks:
                            raise CorruptTraceError(
                                f"merged shard at {site} came back with "
                                f"the wrong rank span")
                # only a result that survived every fault check gets its
                # telemetry absorbed: a killed or corrupted attempt is
                # recomputed, and counting it here (not in the attempt)
                # keeps the merged tree free of duplicate merge spans
                # and the counters equal across jobs=1 and jobs=N runs
                if collect:
                    if report is not None:
                        _absorb_report(report, self.recorder, self._scope)
                    else:
                        self.recorder.record(
                            "merge.task", dur_s=dt, scope="pipeline",
                            site=site, attempt=attempt,
                            **_pair_attrs(a, b))
                        _count_task(self._scope, dt)
                return out

            def on_exhausted(exc: BaseException, a=a, b=b) -> RankShard:
                for off, c in enumerate(a.calls):
                    self.salvage.lose_rank(a.base_rank + off, c)
                for off, c in enumerate(b.calls):
                    self.salvage.lose_rank(b.base_rank + off, c)
                self.salvage.note(
                    f"ranks [{a.base_rank}, {b.base_rank + b.nranks}) "
                    f"lost at {site} ({type(exc).__name__}: {exc})")
                return RankShard.empty(
                    a.base_rank, a.nranks + b.nranks,
                    timing=a.timing_duration is not None)

            merged.append(sup.run(thunk, site=site,
                                  on_exhausted=on_exhausted))
        if len(items) % 2:
            merged.append(items[-1])
        return merged

    # -- stage 3: serialize ------------------------------------------------------------

    def serialize(self, shard: RankShard) -> PipelineResult:
        prof = self.profiler
        with prof.phase("cfg_merge") as ph_cfg:
            cfg = merge_grammars(shard.cfg.per_rank(),
                                 loop_detection=self.loop_detection,
                                 dedup=self.cfg_dedup)
        timing_d = timing_i = None
        if shard.timing_duration is not None:
            with prof.phase("timing_merge"):
                timing_d = merge_grammars(shard.timing_duration.per_rank(),
                                          loop_detection=self.loop_detection,
                                          dedup=self.cfg_dedup)
                timing_i = merge_grammars(shard.timing_interval.per_rank(),
                                          loop_detection=self.loop_detection,
                                          dedup=self.cfg_dedup)
        with prof.phase("serialize"):
            trace = TraceFile(nprocs=shard.nranks, cst=shard.merged_cst(),
                              cfg=cfg, timing_duration=timing_d,
                              timing_interval=timing_i,
                              timing_meta=(self.timing_meta
                                           if timing_d is not None else None))
            if not self.resilient:
                blob = trace.to_bytes()
            else:
                blob = self.supervisor.run(
                    lambda attempt: self._serialize_once(trace),
                    site="serialize")
        degraded = self.salvage.degraded
        if degraded and self._scope is not None:
            self._scope.counter("degraded").inc()
        return PipelineResult(trace=trace, trace_bytes=blob, cfg=cfg,
                              shard=shard, time_cfg=ph_cfg.wall,
                              degraded=degraded,
                              salvage=self.salvage if degraded else None)

    def _serialize_once(self, trace: TraceFile) -> bytes:
        inj = self.injector
        if inj is not None:
            inj.raise_failure("serialize")
        blob = trace.to_bytes()
        if inj is not None:
            damaged = inj.corrupt_bytes("serialize", blob)
            if damaged is not None:
                # the reader's CRC pass is the corruption detector; a
                # parse failure here is retryable like any other fault
                TraceFile.from_bytes(damaged)
        return blob

    # -- the whole flow ----------------------------------------------------------------

    def run(self, compressors) -> PipelineResult:
        shards = self.shard(compressors)
        final = self.reduce(shards)
        result = self.serialize(final)
        result.time_reduce = (self.profiler.wall("shard")
                              + self.profiler.wall("cst_merge"))
        return result
