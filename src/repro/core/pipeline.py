"""The explicit three-stage compression pipeline (shard → reduce →
serialize).

Stage 1 (**shard**) freezes every rank's intra-process state into a
self-contained :class:`~repro.core.shard.RankShard`.  Stage 2
(**reduce**) folds the shards through :func:`~repro.core.shard.
merge_shards` in ceil(log2 P) pairwise levels — the paper's Fig 3/4 tree
reduction — serially by default or in parallel over a
:class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=N``).  Because
the merge is associative (see :mod:`repro.core.shard`), every tree shape
and every ``jobs`` setting yields byte-identical traces.  Stage 3
(**serialize**) runs the final CFG dedup/merge/Sequitur pass over the
reduced shard's per-rank grammars and emits the v2 on-disk format.

Each reduction level is timed as a ``merge.level.<k>`` phase in the
attached :class:`~repro.obs.PhaseProfiler`, so ``repro stats`` renders
the per-level breakdown of the Fig 8 decomposition.

:func:`tree_reduce` is generic (any associative ``merge(a, b)``), so
later subsystems — timing reduction, multi-trace aggregation — can reuse
the scheduler unchanged.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TypeVar

from ..obs import PhaseProfiler
from .interproc import CFGMergeResult, merge_grammars
from .shard import GrammarSet, RankShard, merge_shards
from .trace_format import TraceFile

T = TypeVar("T")


def _merge_level(items: list, merge: Callable, pool) -> list:
    """One reduction level: merge adjacent pairs, pass an odd tail
    through unchanged.  With a pool, pair merges run concurrently; the
    gather is in order, so the next level sees a deterministic list."""
    pairs = [(items[i], items[i + 1])
             for i in range(0, len(items) - 1, 2)]
    if pool is not None:
        futures = [pool.submit(merge, a, b) for a, b in pairs]
        merged = [f.result() for f in futures]
    else:
        merged = [merge(a, b) for a, b in pairs]
    if len(items) % 2:
        merged.append(items[-1])
    return merged


def tree_reduce(items: Sequence[T], merge: Callable[[T, T], T], *,
                jobs: int = 1,
                profiler: Optional[PhaseProfiler] = None,
                phase_prefix: str = "merge.level") -> T:
    """Fold *items* with an associative *merge* in ceil(log2 N) pairwise
    levels.

    ``jobs=1`` runs serially in-process; ``jobs>1`` dispatches each
    level's pair merges to a process pool (*merge* must then be a
    picklable module-level callable, as must the items).  Per-level wall
    time is recorded as ``<phase_prefix>.<k>`` phases in *profiler*.
    """
    if not items:
        raise ValueError("tree_reduce needs at least one item")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if profiler is None:
        profiler = PhaseProfiler()
    work = list(items)
    if len(work) == 1:
        return work[0]
    # a pool is pure overhead unless at least one level has >= 2 pairs
    use_pool = jobs > 1 and len(work) >= 4
    pool = ProcessPoolExecutor(max_workers=jobs) if use_pool else None
    try:
        level = 0
        while len(work) > 1:
            with profiler.phase(f"{phase_prefix}.{level}"):
                work = _merge_level(work, merge, pool)
            level += 1
    finally:
        if pool is not None:
            pool.shutdown()
    return work[0]


@dataclass
class PipelineResult:
    """Everything the serialize stage produced."""

    trace: TraceFile
    trace_bytes: bytes
    cfg: CFGMergeResult
    shard: RankShard
    #: wall seconds: shard freeze + tree reduction (the "inter CST" cost)
    time_reduce: float = 0.0
    #: wall seconds: final CFG dedup/merge/Sequitur (the "inter CFG" cost)
    time_cfg: float = 0.0


class TracePipeline:
    """Drives shard → reduce → serialize over a set of
    :class:`~repro.core.shard.RankCompressor` objects (or pre-built
    shards), timing every stage through *profiler*."""

    def __init__(self, *, loop_detection: bool = True,
                 cfg_dedup: bool = True, jobs: int = 1,
                 profiler: Optional[PhaseProfiler] = None):
        self.loop_detection = loop_detection
        self.cfg_dedup = cfg_dedup
        self.jobs = jobs
        self.profiler = profiler if profiler is not None else PhaseProfiler()

    # -- stage 1: shard ----------------------------------------------------------------

    def shard(self, compressors) -> list[RankShard]:
        with self.profiler.phase("shard"):
            return [rc.freeze() for rc in compressors]

    # -- stage 2: reduce ---------------------------------------------------------------

    def reduce(self, shards: Sequence[RankShard]) -> RankShard:
        with self.profiler.phase("cst_merge"):
            if not shards:
                # a never-run tracer still finalizes to a valid empty trace
                return RankShard(base_rank=0, nranks=0, sigs=[], counts=[],
                                 dur_ns=[], cfg=GrammarSet(unique=[], uid=[]),
                                 calls=[])
            return tree_reduce(shards, merge_shards, jobs=self.jobs,
                               profiler=self.profiler)

    # -- stage 3: serialize ------------------------------------------------------------

    def serialize(self, shard: RankShard) -> PipelineResult:
        prof = self.profiler
        with prof.phase("cfg_merge") as ph_cfg:
            cfg = merge_grammars(shard.cfg.per_rank(),
                                 loop_detection=self.loop_detection,
                                 dedup=self.cfg_dedup)
        timing_d = timing_i = None
        if shard.timing_duration is not None:
            with prof.phase("timing_merge"):
                timing_d = merge_grammars(shard.timing_duration.per_rank(),
                                          loop_detection=self.loop_detection,
                                          dedup=self.cfg_dedup)
                timing_i = merge_grammars(shard.timing_interval.per_rank(),
                                          loop_detection=self.loop_detection,
                                          dedup=self.cfg_dedup)
        with prof.phase("serialize"):
            trace = TraceFile(nprocs=shard.nranks, cst=shard.merged_cst(),
                              cfg=cfg, timing_duration=timing_d,
                              timing_interval=timing_i)
            blob = trace.to_bytes()
        return PipelineResult(trace=trace, trace_bytes=blob, cfg=cfg,
                              shard=shard, time_cfg=ph_cfg.wall)

    # -- the whole flow ----------------------------------------------------------------

    def run(self, compressors) -> PipelineResult:
        shards = self.shard(compressors)
        final = self.reduce(shards)
        result = self.serialize(final)
        result.time_reduce = (self.profiler.wall("shard")
                              + self.profiler.wall("cst_merge"))
        return result
