"""Relative-rank encoding (§3.4.2).

Rank-valued parameters (src/dst, and rank-correlated integers like tags,
colors, and keys) are stored relative to the caller's rank in the
communicator, so a stencil's ``send(dest=me+1)`` produces the *same*
signature on every rank.  Encoded values are small marker-tagged tuples:

* ``(MARK_SPECIAL, v)`` — MPI constants (PROC_NULL, ANY_SOURCE, ANY_TAG…)
* ``(MARK_REL, delta)`` — relative to the caller's comm rank
* ``(MARK_ABS, v)`` — absolute value

``src``/``dst`` are always encoded relative (they are semantically
ranks).  Tags/colors/keys are relative only when the offset is within
``REL_WINDOW`` of the caller's rank (default 0, i.e. only ``v == rank``):
a constant ``tag=1`` near-but-not-at the caller's rank must stay absolute
or its relative form would *differ* per rank and wreck inter-process
compression, while ``key=rank`` collapses to ``(MARK_REL, 0)``
everywhere.  Decoding is exact given the caller's rank, so the scheme is
lossless either way.
"""

from __future__ import annotations

from ..mpisim import constants as C

MARK_SPECIAL = 0
MARK_REL = 1
MARK_ABS = 2

#: constants that must never be interpreted as real ranks
_SPECIALS = frozenset((C.PROC_NULL, C.ANY_SOURCE, C.ANY_TAG, C.ROOT,
                       C.UNDEFINED))

#: |v - rank| window within which rank-correlated ints go relative;
#: 0 means only exact ``v == rank`` matches (the key=rank idiom)
REL_WINDOW = 0


def encode_rank(value: int, my_rank: int, *, enabled: bool = True) -> tuple:
    """Encode a parameter that IS a rank (src/dst/root)."""
    if value in _SPECIALS:
        return (MARK_SPECIAL, value)
    if not enabled:
        return (MARK_ABS, value)
    return (MARK_REL, value - my_rank)


def encode_rankish(value: int, my_rank: int, *, enabled: bool = True) -> tuple:
    """Encode a parameter that MAY be rank-correlated (tag/color/key)."""
    if value in _SPECIALS:
        return (MARK_SPECIAL, value)
    if enabled and abs(value - my_rank) <= REL_WINDOW:
        return (MARK_REL, value - my_rank)
    return (MARK_ABS, value)


def decode(encoded: tuple, my_rank: int) -> int:
    """Exact inverse of both encoders, given the caller's rank."""
    mark, v = encoded
    if mark == MARK_REL:
        return v + my_rank
    return v
