"""Replay microbenchmark.

Times the re-execution side: a directed replay with the lockstep
comparator attached (exactly what ``repro replay`` / ``api.replay``
runs on the identical-conditions path).  Trace blobs are captured once
at setup; the headline metric is ``replay_ms_per_call`` — divergence
checking cost per recorded MPI call, aggregated across families — so
the number stays comparable as family call counts evolve.
"""

from __future__ import annotations

from time import perf_counter

from ..core.backends import TracerOptions, make_tracer
from ..core.decoder import TraceDecoder
from ..workloads import make
from . import register
from .hotpath import DEFAULT_FAMILIES


@register("replay", "directed replay + lockstep divergence check time")
def _replay(params: dict):
    from ..replay.divergence import run_divergence
    families = list(params.setdefault("families", list(DEFAULT_FAMILIES)))
    nprocs = int(params.setdefault("nprocs", 8))
    seed = int(params.setdefault("seed", 1))
    blobs = []
    total_calls = 0
    for fam in families:
        tracer = make_tracer("pilgrim", TracerOptions())
        make(fam, nprocs).run(seed=seed, tracer=tracer)
        blob = tracer.result.trace_bytes
        calls = TraceDecoder.from_bytes(blob).call_count()
        total_calls += calls
        blobs.append((fam, blob))

    def sample() -> dict:
        out: dict = {}
        total_ms = 0.0
        for fam, blob in blobs:
            start = perf_counter()
            res = run_divergence(blob)
            ms = (perf_counter() - start) * 1e3
            if res.diverged:  # a diverged fixed point is a broken bench
                raise RuntimeError(
                    f"identical-conditions replay of {fam} diverged: "
                    f"{res.summary()}")
            out[f"{fam}.replay_ms"] = ms
            total_ms += ms
        out["replay_ms_per_call"] = total_ms / max(total_calls, 1)
        return out

    return sample
