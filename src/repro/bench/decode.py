"""Decode microbenchmark.

Times the consumer side: parsing a serialized trace and expanding every
rank's grammar back to its full terminal stream ("recursive rule
application", §3.6), plus the trace-store read path — reassembling and
integrity-verifying a stored run (``store.get``).  Trace blobs are
produced and stored once at setup.
"""

from __future__ import annotations

import tempfile
from time import perf_counter

from ..core.backends import TracerOptions, make_tracer
from ..core.decoder import TraceDecoder
from ..workloads import make
from . import register
from .hotpath import DEFAULT_FAMILIES


@register("decode", "trace parse + full grammar expansion time, "
                    "plus the trace-store read path")
def _decode(params: dict):
    from ..store import TraceStore
    families = list(params.setdefault("families", list(DEFAULT_FAMILIES)))
    nprocs = int(params.setdefault("nprocs", 8))
    seed = int(params.setdefault("seed", 1))
    blobs = []
    for fam in families:
        tracer = make_tracer("pilgrim", TracerOptions())
        make(fam, nprocs).run(seed=seed, tracer=tracer)
        blobs.append((fam, tracer.result.trace_bytes))
    # held in the sample closure so the store outlives setup; cleaned
    # up by the TemporaryDirectory finalizer on release
    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
    store = TraceStore(tmp.name)
    runs = {fam: store.put(blob, fam).run_id for fam, blob in blobs}

    def sample(_tmp=tmp) -> dict:
        out: dict = {}
        for fam, blob in blobs:
            start = perf_counter()
            TraceDecoder.from_bytes(blob).all_terminals()
            out[f"{fam}.decode_ms"] = (perf_counter() - start) * 1e3
            start = perf_counter()
            store.get(runs[fam])
            out[f"{fam}.store_get_ms"] = (perf_counter() - start) * 1e3
        return out

    return sample
