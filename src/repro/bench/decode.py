"""Decode microbenchmark.

Times the consumer side: parsing a serialized trace and expanding every
rank's grammar back to its full terminal stream ("recursive rule
application", §3.6).  Trace blobs are produced once at setup.
"""

from __future__ import annotations

from time import perf_counter

from ..core.backends import TracerOptions, make_tracer
from ..core.decoder import TraceDecoder
from ..workloads import make
from . import register
from .hotpath import DEFAULT_FAMILIES


@register("decode", "trace parse + full grammar expansion time")
def _decode(params: dict):
    families = list(params.setdefault("families", list(DEFAULT_FAMILIES)))
    nprocs = int(params.setdefault("nprocs", 8))
    seed = int(params.setdefault("seed", 1))
    blobs = []
    for fam in families:
        tracer = make_tracer("pilgrim", TracerOptions())
        make(fam, nprocs).run(seed=seed, tracer=tracer)
        blobs.append((fam, tracer.result.trace_bytes))

    def sample() -> dict:
        out: dict = {}
        for fam, blob in blobs:
            start = perf_counter()
            TraceDecoder.from_bytes(blob).all_terminals()
            out[f"{fam}.decode_ms"] = (perf_counter() - start) * 1e3
        return out

    return sample
