"""Finalize-stage microbenchmark.

Times the inter-process half of the pipeline (§3.5): shard freeze →
ceil(log2 P) tree reduction of CSTs and grammars → trace-file
serialization.  The per-call stream is replayed untimed into a fresh
tracer each repeat (finalize is destructive of tracer state and
idempotently cached, so it cannot be timed twice on one instance).
"""

from __future__ import annotations

from time import perf_counter

from ..core.backends import TracerOptions, make_tracer
from . import register
from .capture import CapturedRun
from .hotpath import DEFAULT_FAMILIES


@register("finalize",
          "shard freeze + tree reduction + serialization time")
def _finalize(params: dict):
    families = list(params.setdefault("families", list(DEFAULT_FAMILIES)))
    nprocs = int(params.setdefault("nprocs", 8))
    seed = int(params.setdefault("seed", 1))
    jobs = int(params.setdefault("jobs", 1))
    captures = [CapturedRun.record(f, nprocs, seed=seed) for f in families]

    def sample() -> dict:
        out: dict = {}
        for cap in captures:
            tracer = make_tracer("pilgrim", TracerOptions(jobs=jobs))
            cap.replay(tracer)
            start = perf_counter()
            tracer.finalize()
            out[f"{cap.family}.finalize_ms"] = \
                (perf_counter() - start) * 1e3
        return out

    return sample
