"""Finalize-stage microbenchmark.

Times the inter-process half of the pipeline (§3.5): shard freeze →
ceil(log2 P) tree reduction of CSTs and grammars → trace-file
serialization — plus the trace-store write path, a cold ``store.put``
(section split + hashing + CAS writes + manifest) of the serialized
result.  The per-call stream is replayed untimed into a fresh tracer
each repeat (finalize is destructive of tracer state and idempotently
cached, so it cannot be timed twice on one instance); likewise each
put lands in a fresh store root so dedup never flatters the timing.
"""

from __future__ import annotations

import shutil
import tempfile
from time import perf_counter

from ..core.backends import TracerOptions, make_tracer
from . import register
from .capture import CapturedRun
from .hotpath import DEFAULT_FAMILIES


@register("finalize",
          "shard freeze + tree reduction + serialization time, "
          "plus a cold trace-store put")
def _finalize(params: dict):
    from ..store import TraceStore
    families = list(params.setdefault("families", list(DEFAULT_FAMILIES)))
    nprocs = int(params.setdefault("nprocs", 8))
    seed = int(params.setdefault("seed", 1))
    jobs = int(params.setdefault("jobs", 1))
    captures = [CapturedRun.record(f, nprocs, seed=seed) for f in families]

    def sample() -> dict:
        out: dict = {}
        for cap in captures:
            tracer = make_tracer("pilgrim", TracerOptions(jobs=jobs))
            cap.replay(tracer)
            start = perf_counter()
            tracer.finalize()
            out[f"{cap.family}.finalize_ms"] = \
                (perf_counter() - start) * 1e3
            blob = tracer.result.trace_bytes
            root = tempfile.mkdtemp(prefix="repro-bench-store-")
            try:
                start = perf_counter()
                TraceStore(root).put(blob, cap.family)
                out[f"{cap.family}.store_put_ms"] = \
                    (perf_counter() - start) * 1e3
            finally:
                shutil.rmtree(root, ignore_errors=True)
        return out

    return sample
