"""Per-call hot-path microbenchmark (the intra-process axis of Fig 7/8).

Replays captured workload event streams into fresh Pilgrim tracers and
times exactly the ``on_call`` path — encode → CST intern → Sequitur
append — once with the signature/CST caches on and once off.  The
cache-off ablation is the pre-overhaul hot path, so per family three
metrics come out:

* ``<family>.cached_us_per_call``   — the shipping configuration
* ``<family>.uncached_us_per_call`` — the ablation baseline
* ``<family>.cached_over_uncached`` — their ratio, machine-independent

CI gates on the ratios (absolute µs/call vary across runners); the
absolute numbers are what ``BENCH_hotpath.json`` records for humans.
"""

from __future__ import annotations

from ..core.backends import TracerOptions, make_tracer
from . import register
from .capture import CapturedRun

DEFAULT_FAMILIES = ("stencil2d", "osu_latency", "npb_mg",
                    "flash_sedov", "milc_su3_rmd")


@register("hotpath",
          "per-call tracing time, cached vs cache-disabled encoder")
def _hotpath(params: dict):
    families = list(params.setdefault("families", list(DEFAULT_FAMILIES)))
    nprocs = int(params.setdefault("nprocs", 8))
    seed = int(params.setdefault("seed", 1))
    captures = [CapturedRun.record(f, nprocs, seed=seed) for f in families]

    def sample() -> dict:
        out: dict = {}
        for cap in captures:
            per_call_us = 1e6 / max(cap.n_calls, 1)
            cached = make_tracer("pilgrim", TracerOptions(
                signature_cache=True))
            t_cached = cap.timed_replay(cached) * per_call_us
            uncached = make_tracer("pilgrim", TracerOptions(
                signature_cache=False))
            t_uncached = cap.timed_replay(uncached) * per_call_us
            out[f"{cap.family}.cached_us_per_call"] = t_cached
            out[f"{cap.family}.uncached_us_per_call"] = t_uncached
            out[f"{cap.family}.cached_over_uncached"] = \
                t_cached / t_uncached if t_uncached else 1.0
        return out

    return sample
