"""Per-call hot-path microbenchmark (the intra-process axis of Fig 7/8).

Replays captured workload event streams into fresh Pilgrim tracers and
times exactly the ``on_call`` path — encode → CST intern → Sequitur
append — once with the signature/CST caches on and once off.  The
cache-off ablation is the pre-overhaul hot path.  A third tracer takes
the same stream through the batched ``record_batch`` array entry
(per-rank column batches, ``TracerOptions.batch_size``), so per family
five metrics come out:

* ``<family>.cached_us_per_call``    — the shipping per-call path
* ``<family>.uncached_us_per_call``  — the cache-off ablation baseline
* ``<family>.cached_over_uncached``  — their ratio, machine-independent
* ``<family>.batched_us_per_call``   — the columnar array entry
* ``<family>.batched_over_cached``   — batched/cached ratio, likewise
  machine-independent

CI gates on the ratios (absolute µs/call vary across runners); the
absolute numbers are what ``BENCH_hotpath.json`` records for humans.
"""

from __future__ import annotations

from ..core.backends import TracerOptions, make_tracer
from . import register
from .capture import CapturedRun

DEFAULT_FAMILIES = ("stencil2d", "osu_latency", "npb_mg",
                    "flash_sedov", "milc_su3_rmd")


@register("hotpath",
          "per-call tracing time, cached vs cache-disabled encoder")
def _hotpath(params: dict):
    families = list(params.setdefault("families", list(DEFAULT_FAMILIES)))
    nprocs = int(params.setdefault("nprocs", 8))
    seed = int(params.setdefault("seed", 1))
    batch_size = int(params.setdefault("batch_size", 256))
    captures = [CapturedRun.record(f, nprocs, seed=seed) for f in families]

    def sample() -> dict:
        out: dict = {}
        for cap in captures:
            per_call_us = 1e6 / max(cap.n_calls, 1)
            cached = make_tracer("pilgrim", TracerOptions(
                signature_cache=True))
            t_cached = cap.timed_replay(cached) * per_call_us
            uncached = make_tracer("pilgrim", TracerOptions(
                signature_cache=False))
            t_uncached = cap.timed_replay(uncached) * per_call_us
            batched = make_tracer("pilgrim", TracerOptions(
                signature_cache=True, batch_size=batch_size))
            t_batched = cap.timed_replay_batched(
                batched, batch_size=batch_size) * per_call_us
            out[f"{cap.family}.cached_us_per_call"] = t_cached
            out[f"{cap.family}.uncached_us_per_call"] = t_uncached
            out[f"{cap.family}.cached_over_uncached"] = \
                t_cached / t_uncached if t_uncached else 1.0
            out[f"{cap.family}.batched_us_per_call"] = t_batched
            out[f"{cap.family}.batched_over_cached"] = \
                t_batched / t_cached if t_cached else 1.0
        return out

    return sample
