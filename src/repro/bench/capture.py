"""Workload capture/replay for microbenchmarks.

Timing the tracer inside a live simulation conflates tracer time with
simulator time.  Instead each workload runs once under a recording hook
that keeps every ``on_call`` / ``on_mem`` event in order (plus the
finished simulator, whose communicator table the encoder resolves
against), and the benchmarks replay that stream into fresh tracers.

Replay must reproduce what the tracer *saw at hook time*, and two
things keep mutating after the hook returns: request/status objects
(a request is ``consumed`` by its completion call; a reused status is
refilled by the next receive) and the user's request arrays (completed
entries become ``None``).  So the recorder shallow-copies every args
dict (and its list values) and snapshots the mutable request/status
fields per event; replay restores each snapshot before dispatching.
With that, a replayed tracer produces a trace byte-identical to the
live run's.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from ..mpisim.hooks import TracerHooks
from ..mpisim.request import Request
from ..mpisim.status import Status
from ..workloads import make

_CALL, _MEM = 0, 1

#: snapshot tags
_REQ, _ST = 0, 1


def _snap_obj(obj: Any, out: list) -> None:
    if isinstance(obj, Request):
        out.append((_REQ, obj, obj.consumed, obj.freed))
    elif isinstance(obj, Status):
        out.append((_ST, obj, obj.count, obj.cancelled, obj.MPI_SOURCE,
                    obj.MPI_TAG, obj.MPI_ERROR))


def _capture_args(args: dict) -> tuple[dict, tuple]:
    """Shallow-copy *args* (lists included, so later ``arr[i] = None``
    nulling is invisible) and snapshot every request/status in it."""
    copied: dict = {}
    snaps: list = []
    for k, v in args.items():
        if isinstance(v, list):
            v = list(v)
            for item in v:
                _snap_obj(item, snaps)
        elif isinstance(v, tuple):
            for item in v:
                _snap_obj(item, snaps)
        else:
            _snap_obj(v, snaps)
        copied[k] = v
    return copied, tuple(snaps)


def _restore(snaps: tuple) -> None:
    for s in snaps:
        if s[0] == _REQ:
            obj = s[1]
            obj.consumed, obj.freed = s[2], s[3]
        else:
            obj = s[1]
            (obj.count, obj.cancelled, obj.MPI_SOURCE,
             obj.MPI_TAG, obj.MPI_ERROR) = s[2:]


class _RecordingHooks(TracerHooks):
    """Stores the raw hook stream; does no encoding at all."""

    def __init__(self) -> None:
        self.sim = None
        self.events: list[tuple] = []

    def on_run_start(self, sim) -> None:
        self.sim = sim

    def on_call(self, rank, fname, args, t0, t1) -> None:
        copied, snaps = _capture_args(args)
        self.events.append((_CALL, rank, fname, copied, t0, t1, snaps))

    def on_mem(self, rank, fname, args, result, t) -> None:
        self.events.append((_MEM, rank, fname, dict(args), result, t, ()))


@dataclass
class CapturedRun:
    """One workload's hook-event stream plus the simulator it ran on."""

    family: str
    nprocs: int
    sim: Any
    events: list[tuple]
    n_calls: int

    @classmethod
    def record(cls, family: str, nprocs: int, *, seed: int = 1,
               **params) -> "CapturedRun":
        rec = _RecordingHooks()
        make(family, nprocs, **params).run(seed=seed, tracer=rec)
        n_calls = sum(1 for ev in rec.events if ev[0] == _CALL)
        return cls(family=family, nprocs=nprocs, sim=rec.sim,
                   events=rec.events, n_calls=n_calls)

    def replay(self, tracer: TracerHooks, *, finish: bool = False) -> None:
        """Feed the captured stream into a fresh *tracer*; with *finish*
        also run ``on_run_end`` (the finalize stage)."""
        tracer.on_run_start(self.sim)
        for ev in self.events:
            if ev[6]:
                _restore(ev[6])
            if ev[0] == _CALL:
                tracer.on_call(ev[1], ev[2], ev[3], ev[4], ev[5])
            else:
                tracer.on_mem(ev[1], ev[2], ev[3], ev[4], ev[5])
        if finish:
            tracer.on_run_end(self.sim)

    def _batched_ops(self, batch_size: int) -> list[tuple]:
        """Per-rank column batches for :meth:`replay_batched`.

        Real deployments batch per process, where every call shares one
        rank; the global interleaving in ``events`` is an artifact of
        simulating all ranks in one process.  Grouping per rank keeps
        each rank's call order exact.  A batch's snapshot restores all
        run before the batch dispatches, so a batch must never hold two
        snapshots of one object in different states (an Isend and the
        Wait that consumes its request, say) — such an event starts a
        new batch.  Memory events flush the batch and dispatch singly.

        The grouping is pure (it only reads ``events``), so it is cached
        per batch size — benchmarks replay the same run many times.
        """
        cache = getattr(self, "_ops_cache", None)
        if cache is None:
            cache = {}
            self._ops_cache = cache
        got = cache.get(batch_size)
        if got is not None:
            return got
        per_rank: dict[int, list[tuple]] = {}
        for ev in self.events:
            per_rank.setdefault(ev[1], []).append(ev)
        ops: list[tuple] = []
        for rank in sorted(per_rank):
            batch: list[tuple] = []
            seen: dict[int, tuple] = {}

            def flush(rank=rank, batch=batch, seen=seen):
                if batch:
                    ops.append(("b", rank,
                                [ev[6] for ev in batch if ev[6]],
                                [ev[2] for ev in batch],
                                [ev[3] for ev in batch],
                                [ev[4] for ev in batch],
                                [ev[5] for ev in batch]))
                    batch.clear()
                    seen.clear()

            for ev in per_rank[rank]:
                if ev[0] != _CALL:
                    flush()
                    ops.append(("m", ev))
                    continue
                snaps = ev[6]
                if snaps and any(
                        seen.get(id(s[1]), s[2:]) != s[2:] for s in snaps):
                    flush()
                batch.append(ev)
                for s in snaps:
                    seen[id(s[1])] = s[2:]
                if len(batch) >= batch_size:
                    flush()
            flush()
        cache[batch_size] = ops
        return ops

    def replay_batched(self, tracer: TracerHooks, *,
                       batch_size: int = 256, finish: bool = False) -> None:
        """Feed the stream through the tracer's ``record_batch`` array
        entry point, batching each rank's calls into columns (see
        :meth:`_batched_ops`).  For SPMD workloads the result is
        byte-identical to :meth:`replay` — every rank touches shared id
        spaces in the same order — and the batched-hotpath tests assert
        exactly that per family."""
        tracer.on_run_start(self.sim)
        for op in self._batched_ops(batch_size):
            if op[0] == "b":
                for snaps in op[2]:
                    _restore(snaps)
                tracer.record_batch(op[1], op[3], op[4], op[5], op[6])
            else:
                ev = op[1]
                if ev[6]:
                    _restore(ev[6])
                tracer.on_mem(ev[1], ev[2], ev[3], ev[4], ev[5])
        if finish:
            tracer.on_run_end(self.sim)

    def timed_replay_batched(self, tracer: TracerHooks, *,
                             batch_size: int = 256) -> float:
        """Wall seconds spent inside the batched hooks only (column
        assembly and snapshot restores excluded) — the array-entry
        counterpart of :meth:`timed_replay`."""
        ops = self._batched_ops(batch_size)
        tracer.on_run_start(self.sim)
        record_batch, on_mem = tracer.record_batch, tracer.on_mem
        total = 0.0
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            for op in ops:
                if op[0] == "b":
                    for snaps in op[2]:
                        _restore(snaps)
                    start = perf_counter()
                    record_batch(op[1], op[3], op[4], op[5], op[6])
                    total += perf_counter() - start
                else:
                    ev = op[1]
                    if ev[6]:
                        _restore(ev[6])
                    start = perf_counter()
                    on_mem(ev[1], ev[2], ev[3], ev[4], ev[5])
                    total += perf_counter() - start
        finally:
            if was_enabled:
                gc.enable()
        return total

    def timed_replay(self, tracer: TracerHooks) -> float:
        """Replay and return wall seconds spent in the hook loop only
        (``on_run_start`` setup and snapshot restores excluded) — the
        intra-process tracing time of Fig 7/8, with the simulator out
        of the picture."""
        tracer.on_run_start(self.sim)
        on_call, on_mem = tracer.on_call, tracer.on_mem
        total = 0.0
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            for ev in self.events:
                if ev[6]:
                    _restore(ev[6])
                start = perf_counter()
                if ev[0] == _CALL:
                    on_call(ev[1], ev[2], ev[3], ev[4], ev[5])
                else:
                    on_mem(ev[1], ev[2], ev[3], ev[4], ev[5])
                total += perf_counter() - start
        finally:
            if was_enabled:
                gc.enable()
        return total
