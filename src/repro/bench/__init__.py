"""Microbenchmark harness (``repro bench``).

A registry of named microbenchmarks over the tracing pipeline.  Each
benchmark is a *factory*: it performs its (possibly expensive) setup
once — capturing workload event streams, pre-building trace blobs —
and returns a zero-argument closure that produces one sample of every
metric per invocation.  The runner calls the closure ``warmup`` times
untimed, then ``repeats`` times, and reports per-metric median and
interquartile range.

All metrics are lower-is-better timings or ratios, which is what lets
:func:`compare_results` gate regressions with one rule: a metric
regresses when it exceeds ``baseline * (1 + max_regression/100)``.
CI keeps a baseline of machine-independent ratios under
``benchmarks/baselines/``; humans read the absolute numbers from
``BENCH_<name>.json``.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
import types
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

SampleFn = Callable[[], dict]
BenchFactory = Callable[[dict], SampleFn]


@dataclass(frozen=True)
class Benchmark:
    name: str
    description: str
    factory: BenchFactory


REGISTRY: dict[str, Benchmark] = {}


def register(name: str, description: str = ""):
    """Register a benchmark factory under *name*; used as a decorator."""
    def _register(fn: BenchFactory) -> BenchFactory:
        if name in REGISTRY:
            raise ValueError(f"benchmark {name!r} already registered")
        REGISTRY[name] = Benchmark(name, description, fn)
        return fn
    return _register


def available_benchmarks() -> list[str]:
    return sorted(REGISTRY)


def _iqr(vals: list[float]) -> float:
    if len(vals) < 2:
        return 0.0
    q1, _, q3 = statistics.quantiles(vals, n=4, method="inclusive")
    return q3 - q1


def run_benchmark(name: str, *, repeats: int = 5, warmup: int = 1,
                  params: Optional[dict] = None) -> dict:
    """Run benchmark *name* and return its result document (the JSON
    that lands in ``benchmarks/results/<name>.json``)."""
    try:
        bench = REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"known: {available_benchmarks()}") from None
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    params = dict(params or {})
    sample = bench.factory(params)
    for _ in range(warmup):
        sample()
    runs = [sample() for _ in range(repeats)]

    samples: dict[str, list[float]] = {}
    for run in runs:
        for key, val in run.items():
            samples.setdefault(key, []).append(float(val))
    metrics: dict[str, float] = {}
    stats: dict[str, dict] = {}
    for key in sorted(samples):
        vals = samples[key]
        med = statistics.median(vals)
        metrics[key] = med
        stats[key] = {"median": med, "iqr": _iqr(vals),
                      "min": min(vals), "max": max(vals),
                      "samples": vals}
    return {
        "benchmark": name,
        "description": bench.description,
        "created_unix": round(time.time(), 3),
        "repeats": repeats,
        "warmup": warmup,
        "params": params,
        "metrics": metrics,
        "stats": stats,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
    }


@dataclass(frozen=True)
class Regression:
    """One metric that exceeded its regression budget."""

    metric: str
    baseline: float
    current: float
    limit: float

    @property
    def pct_change(self) -> float:
        if not self.baseline:
            return float("inf")
        return 100.0 * (self.current / self.baseline - 1.0)

    def __str__(self) -> str:
        return (f"{self.metric}: {self.current:.4g} vs baseline "
                f"{self.baseline:.4g} ({self.pct_change:+.1f}%, "
                f"limit {self.limit:.4g})")


def compare_results(current: dict, baseline: dict,
                    max_regression: float) -> tuple[list, list]:
    """Gate *current* against *baseline*: every metric in
    ``baseline["metrics"]`` must stay within ``(1 + max_regression/100)``
    of its baseline value.  Returns ``(regressions, missing)`` where
    *missing* lists baseline metrics the current run did not produce
    (also a gate failure — a renamed metric must not silently pass)."""
    regressions: list[Regression] = []
    missing: list[str] = []
    base = baseline.get("metrics") or {}
    cur = current.get("metrics") or {}
    for name in sorted(base):
        if name not in cur:
            missing.append(name)
            continue
        b, c = float(base[name]), float(cur[name])
        limit = b * (1.0 + max_regression / 100.0)
        if c > limit:
            regressions.append(Regression(name, b, c, limit))
    return regressions, missing


def bench_manifest(doc: dict, *, outputs: Optional[dict] = None):
    """A :class:`~repro.obs.RunManifest` describing one benchmark run
    (the sidecar :func:`write_results` writes next to the result JSON)."""
    from ..obs import (RunManifest, git_describe, host_environment,
                       peak_rss_kb)
    params = dict(doc.get("params") or {})
    return RunManifest(
        command="bench",
        workload=doc.get("benchmark"),
        nprocs=params.get("nprocs"),
        seed=params.get("seed"),
        options={"repeats": doc.get("repeats"),
                 "warmup": doc.get("warmup"), "params": params},
        git=git_describe(), environment=host_environment(),
        peak_rss_kb=peak_rss_kb(),
        totals={"metrics": dict(doc.get("metrics") or {})},
        outputs=dict(outputs or {}))


def write_results(doc: dict, output_dir: str = "benchmarks/results", *,
                  root_copy: bool = True, manifest: bool = True
                  ) -> list[Path]:
    """Write the result document to ``<output_dir>/<name>.json`` and
    (by default) a ``BENCH_<name>.json`` copy in the current directory —
    the at-a-glance artifact the README points to.  A
    :class:`~repro.obs.RunManifest` sidecar
    (``<output_dir>/<name>.json.manifest.json``) rides along by
    default."""
    text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    out_dir = Path(output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = [out_dir / f"{doc['benchmark']}.json"]
    if root_copy:
        paths.append(Path(f"BENCH_{doc['benchmark']}.json"))
    for p in paths:
        p.write_text(text)
    if manifest:
        from ..obs import RunManifest
        side = bench_manifest(
            doc, outputs={"result_bytes": len(text.encode())})
        paths.append(Path(side.write(
            RunManifest.default_path(str(paths[0])))))
    return paths


# built-in benchmarks register themselves on import
from . import decode, finalize, hotpath, replay  # noqa: E402,F401


class _BenchFacadeModule(types.ModuleType):
    """Make ``repro.bench`` callable: the package doubles as the facade
    verb (``repro.bench("hotpath")``, see :func:`repro.api.bench`), so
    importing the subpackage can never shadow the public API."""

    def __call__(self, name: str = "hotpath", *, repeats: int = 5,
                 warmup: int = 1, params: Optional[dict] = None) -> dict:
        return run_benchmark(name, repeats=repeats, warmup=warmup,
                             params=params)


sys.modules[__name__].__class__ = _BenchFacadeModule
