"""Chaos harness: run workloads under seeded fault plans and classify.

The central property this harness checks (and the chaos CI job
demonstrates) is::

    for any seeded FaultPlan, a traced run either
      (a) RECOVERED  — produces a byte-identical trace to the fault-free
                       run after retries, or
      (b) DEGRADED   — returns degraded=True with a SalvageReport whose
                       surviving-rank call counts exactly match the
                       fault-free trace,
    and never ends in an unhandled exception.

``repro faults`` drives :func:`run_fault_matrix` from the CLI.

The heavyweight imports (``repro.api``) are deferred into function
bodies: the rest of this package is stdlib-only and importable from the
core pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .faults import FaultPlan

RECOVERED = "recovered"
DEGRADED = "degraded"
FAILED = "failed"


@dataclass
class ChaosCase:
    """The classified outcome of one workload-under-faults run."""

    workload: str
    nprocs: int
    plan: FaultPlan
    outcome: str
    fired: List[str] = field(default_factory=list)
    detail: str = ""
    #: surviving-rank call total (degraded runs) or full total (recovered)
    surviving_calls: int = 0
    lost_calls: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome != FAILED

    def describe(self) -> str:
        head = (f"{self.workload:>12} np={self.nprocs:<3} "
                f"{self.outcome.upper():>9}")
        fired = ",".join(self.fired) if self.fired else "no fault fired"
        tail = f" [{fired}]"
        if self.detail:
            tail += f" {self.detail}"
        return head + tail


def run_chaos_case(workload: str, nprocs: int, plan: FaultPlan, *,
                   seed: int = 1, options=None, params=None,
                   reference=None) -> ChaosCase:
    """Trace *workload* under *plan* and classify the outcome.

    *reference* is an optional pre-computed fault-free
    ``repro.api.TraceResult`` for the same (workload, nprocs, seed,
    options, params); it is computed on demand when omitted.
    """
    from .. import api  # deferred: keeps this package core-importable

    if reference is None:
        reference = api.trace(workload, nprocs, seed=seed, options=options,
                              params=params)

    case = ChaosCase(workload=workload, nprocs=nprocs, plan=plan,
                     outcome=FAILED)
    try:
        faulty = api.trace(workload, nprocs, seed=seed, options=options,
                           params=params, fault_plan=plan)
    except Exception as exc:  # noqa: BLE001 - the property under test
        case.detail = f"unhandled {type(exc).__name__}: {exc}"
        return case
    case.fired = list(faulty.fired_faults)

    if not faulty.degraded:
        if faulty.trace_bytes == reference.trace_bytes:
            case.outcome = RECOVERED
            case.surviving_calls = faulty.total_calls
        else:
            case.detail = ("non-degraded result differs from the "
                           "fault-free trace bytes")
        return case

    # degraded: surviving-rank call counts must match the reference
    report = faulty.salvage
    if report is None:
        case.detail = "degraded=True but no SalvageReport attached"
        return case
    try:
        ref_dec = api.decode(reference.trace_bytes)
        got_dec = api.decode(faulty.trace_bytes, salvage=True)
        mism = [
            r for r in report.surviving_ranks(nprocs)
            if got_dec.call_count(r) != ref_dec.call_count(r)
        ]
    except Exception as exc:  # noqa: BLE001
        case.detail = f"decode of degraded trace failed: {exc}"
        return case
    if mism:
        case.detail = (f"surviving ranks {mism[:8]} disagree with the "
                       f"fault-free trace")
        return case
    case.outcome = DEGRADED
    case.surviving_calls = sum(
        got_dec.call_count(r) for r in report.surviving_ranks(nprocs))
    case.lost_calls = report.call_deficit
    case.detail = report.summary()
    return case


def run_fault_matrix(workloads: Sequence[str], *, nprocs: int = 8,
                     n_plans: int = 8, seed: int = 1,
                     base_plan_seed: int = 100, options=None, params=None,
                     plans: Optional[Sequence[FaultPlan]] = None,
                     ) -> List[ChaosCase]:
    """The chaos matrix: every workload x *n_plans* seeded random plans
    (or an explicit plan list).  One fault-free reference trace is
    computed per workload and shared across its row."""
    from .. import api  # deferred

    if plans is None:
        plans = [FaultPlan.random(base_plan_seed + i, nprocs)
                 for i in range(n_plans)]
    cases: List[ChaosCase] = []
    for wl in workloads:
        reference = api.trace(wl, nprocs, seed=seed, options=options,
                              params=params)
        for plan in plans:
            cases.append(run_chaos_case(
                wl, nprocs, plan, seed=seed, options=options, params=params,
                reference=reference))
    return cases
