"""Salvage accounting: what a degraded run lost, precisely.

A :class:`SalvageReport` is attached to any pipeline result or decoded
trace that is not complete.  It answers the questions an analyst needs
before trusting a partial trace: *which ranks are gone*, *which sections
were dropped*, and *how many calls the surviving data fails to account
for*.  ``repro verify --allow-degraded`` uses it to assert conservation
on the surviving ranks only.

Stdlib-only by design (see the package docstring): the core pipeline
and trace reader both import this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class SalvageReport:
    """What was lost, and what survived, in a degraded run or read."""

    #: ranks whose data is gone entirely (placeholder shards / missing
    #: from the rank map)
    lost_ranks: List[int] = field(default_factory=list)
    #: dropped artifacts, e.g. ``"timing-duration"`` or ``"rank 3 shard"``
    lost_sections: List[str] = field(default_factory=list)
    #: calls known to have been observed but absent from the surviving
    #: trace, keyed by rank (-1 when the rank is unknown)
    lost_calls: Dict[int, int] = field(default_factory=dict)
    #: free-form diagnostics, in discovery order
    notes: List[str] = field(default_factory=list)

    # -- recording ----------------------------------------------------------------

    def lose_rank(self, rank: int, calls: int = 0,
                  reason: str = "") -> None:
        if rank not in self.lost_ranks:
            self.lost_ranks.append(rank)
        if calls:
            self.lost_calls[rank] = max(self.lost_calls.get(rank, 0), calls)
        if reason:
            self.notes.append(f"rank {rank}: {reason}")

    def lose_span(self, base_rank: int, nranks: int, calls: int = 0,
                  reason: str = "") -> None:
        """Lose a contiguous rank span (a dead merge subtree)."""
        per = calls // nranks if nranks else 0
        for i in range(nranks):
            self.lose_rank(base_rank + i, per)
        if reason:
            self.notes.append(
                f"ranks [{base_rank}, {base_rank + nranks}): {reason}")

    def lose_section(self, name: str, reason: str = "") -> None:
        if name not in self.lost_sections:
            self.lost_sections.append(name)
        if reason:
            self.notes.append(f"{name}: {reason}")

    def note(self, text: str) -> None:
        self.notes.append(text)

    def merge(self, other: Optional["SalvageReport"]) -> "SalvageReport":
        """Fold another report into this one (returns self)."""
        if other is None:
            return self
        for r in other.lost_ranks:
            self.lose_rank(r)
        for r, c in other.lost_calls.items():
            self.lost_calls[r] = max(self.lost_calls.get(r, 0), c)
        for s in other.lost_sections:
            self.lose_section(s)
        self.notes.extend(other.notes)
        return self

    # -- querying -----------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return bool(self.lost_ranks or self.lost_sections
                    or self.lost_calls)

    @property
    def call_deficit(self) -> int:
        """Calls observed by the tracer but missing from the trace."""
        return sum(self.lost_calls.values())

    def surviving_ranks(self, nprocs: int) -> List[int]:
        lost = set(self.lost_ranks)
        return [r for r in range(nprocs) if r not in lost]

    def summary(self) -> str:
        if not self.degraded:
            return "salvage: nothing lost"
        bits = []
        if self.lost_ranks:
            bits.append(f"{len(self.lost_ranks)} rank(s) lost "
                        f"({_spans(self.lost_ranks)})")
        if self.lost_sections:
            bits.append("sections lost: " + ", ".join(self.lost_sections))
        if self.call_deficit:
            bits.append(f"call deficit {self.call_deficit}")
        return "salvage: " + "; ".join(bits)


def _spans(ranks: Iterable[int]) -> str:
    """Render ``[0, 1, 2, 5]`` as ``"0-2, 5"``."""
    out: List[str] = []
    run: List[int] = []
    for r in sorted(set(ranks)):
        if run and r == run[-1] + 1:
            run.append(r)
            continue
        if run:
            out.append(str(run[0]) if len(run) == 1
                       else f"{run[0]}-{run[-1]}")
        run = [r]
    if run:
        out.append(str(run[0]) if len(run) == 1
                   else f"{run[0]}-{run[-1]}")
    return ", ".join(out)
