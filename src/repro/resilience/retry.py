"""Retry, deadline, backoff and circuit-breaker machinery.

The compression pipeline treats every freeze/merge/serialize task as a
*supervised* unit of work: run it, and on a retryable failure back off
(bounded exponential with jitter from a seeded RNG — deterministic per
run) and try again up to a budget.  After too many *consecutive*
worker-style failures the breaker opens and the pipeline falls back to
serial merging in the parent process, which cannot die or stall.

Nothing here imports ``repro.core`` — callers pass in the exception
classes they consider retryable — so the core pipeline can depend on
this module without an import cycle.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

from .faults import WorkerDiedError


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving a task up."""

    #: attempts beyond the first (0 disables retry entirely)
    max_retries: int = 4
    #: first backoff sleep, seconds; doubles each retry up to the cap
    backoff_base: float = 0.01
    backoff_cap: float = 0.25
    #: per-task deadline, seconds (pool futures only; None = no deadline)
    deadline: Optional[float] = 5.0
    #: consecutive worker deaths/stalls before the breaker trips and the
    #: pipeline abandons the process pool for serial merging
    breaker_threshold: int = 3
    #: seed for backoff jitter (determinism: same run, same sleeps)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")


@dataclass
class SupervisorStats:
    """Counters a supervisor accumulates over one pipeline run."""

    retries: int = 0
    worker_deaths: int = 0
    breaker_trips: int = 0
    gave_up: int = 0
    failures: list = field(default_factory=list)

    def record_failure(self, site: str, exc: BaseException) -> None:
        self.failures.append(f"{site}: {type(exc).__name__}: {exc}")


class TaskSupervisor:
    """Runs thunks under a :class:`RetryPolicy`.

    ``retryable`` is the tuple of exception classes worth retrying;
    anything else propagates immediately (a real bug should never be
    swallowed by resilience machinery).  An optional ``scope`` (an
    ``repro.obs`` metrics scope, duck-typed) mirrors the counters into
    the run's metrics registry, and an optional ``recorder`` (an
    ``repro.obs`` span recorder, also duck-typed) gets one
    ``retry.backoff`` span per retry sleep and a ``retry.exhausted``
    marker when a task's budget runs out, so recovery shows up on the
    run timeline.
    """

    def __init__(self, policy: RetryPolicy,
                 retryable: Tuple[Type[BaseException], ...],
                 scope=None,
                 sleep: Callable[[float], None] = time.sleep,
                 recorder=None):
        self.policy = policy
        self.retryable = retryable
        self.scope = scope
        self.sleep = sleep
        self.recorder = recorder
        self.rng = random.Random(policy.seed ^ 0x5EED5EED)
        self.stats = SupervisorStats()
        self._consecutive_worker_failures = 0
        #: once True, pooled dispatch is abandoned for this run
        self.broken = False

    # -- counters ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.scope is not None:
            self.scope.counter(name).inc()

    def _note_worker_failure(self, exc: BaseException) -> None:
        if isinstance(exc, WorkerDiedError):
            self.stats.worker_deaths += 1
            self._count("worker_deaths")
            self._consecutive_worker_failures += 1
            if (not self.broken and self._consecutive_worker_failures
                    >= self.policy.breaker_threshold):
                self.broken = True
                self.stats.breaker_trips += 1
                self._count("breaker_trips")
        else:
            self._consecutive_worker_failures = 0

    def note_success(self) -> None:
        self._consecutive_worker_failures = 0

    def backoff(self, attempt: int) -> float:
        """Sleep duration before retry *attempt* (1-based), jittered."""
        raw = min(self.policy.backoff_cap,
                  self.policy.backoff_base * (2 ** (attempt - 1)))
        return raw * (0.5 + 0.5 * self.rng.random())

    # -- the supervision loop ------------------------------------------------------

    def run(self, thunk: Callable[[int], object], *, site: str,
            on_exhausted: Optional[Callable[[BaseException], object]]
            = None):
        """Run ``thunk(attempt)`` until it succeeds or the retry budget
        is spent.

        ``thunk`` receives the attempt number (0-based) so callers can
        switch strategy on retry — e.g. attempt 0 collects a pool
        future, attempts >= 1 recompute serially in the parent.

        When the budget is exhausted: if ``on_exhausted`` is given, its
        return value becomes the task's result (degraded path);
        otherwise the last exception propagates.
        """
        last: Optional[BaseException] = None
        rec = self.recorder
        for attempt in range(self.policy.max_retries + 1):
            if attempt:
                self.stats.retries += 1
                self._count("retries")
                delay = self.backoff(attempt)
                self.sleep(delay)
                if rec is not None and rec.enabled:
                    rec.record("retry.backoff", dur_s=delay,
                               scope="resilience", site=site,
                               attempt=attempt,
                               error=type(last).__name__ if last else None)
            try:
                result = thunk(attempt)
            except self.retryable as exc:
                last = exc
                self.stats.record_failure(site, exc)
                self._note_worker_failure(exc)
                continue
            self.note_success()
            return result
        self.stats.gave_up += 1
        self._count("gave_up")
        if rec is not None and rec.enabled:
            rec.record("retry.exhausted", dur_s=0.0, scope="resilience",
                       site=site,
                       error=type(last).__name__ if last else None)
        if on_exhausted is not None:
            return on_exhausted(last)  # type: ignore[arg-type]
        assert last is not None
        raise last
