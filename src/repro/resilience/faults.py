"""Deterministic, seeded fault injection.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries
— *what* goes wrong (``kind``), *where* (``site``), *how often*
(``times``/``probability``) and optionally *to whom* (``rank``).  An
armed :class:`FaultInjector` replays the plan deterministically: one
seeded RNG drives every probabilistic decision and every corruption
offset, so a (workload, seed, plan) triple always fails the same way.
That determinism is what makes the chaos property testable — a failed
chaos case can be re-run byte-for-byte.

Injection sites (consulted by the pipeline, the tracer, and the
simulated-MPI scheduler):

==================  =======================================================
``shard.freeze``    freezing one rank's compressor into a shard
``merge.level.<k>`` one pair-merge task at tree-reduction level *k*
                    (a spec site of ``merge`` matches every level)
``serialize``       the final CFG merge + on-disk serialization
``sched``           the simulator's rank scheduler (``delay``/``drop``)
==================  =======================================================

Fault kinds:

================  =========================================================
``oserror``       raise :class:`InjectedOSError` (transient I/O failure)
``memoryerror``   raise :class:`InjectedMemoryError` (allocation failure)
``kill``          raise :class:`WorkerDiedError` (the worker process died)
``stall``         raise :class:`WorkerStallError` (deadline expired on a
                  hung worker)
``corrupt``       flip one bit of the artifact's serialized payload
``truncate``      cut the artifact's serialized bytes short
``delay``         requeue the resumed rank at the scheduler tail
``drop``          suppress one runtime-event emission
================  =========================================================

When no plan is armed every injection point is a ``None`` check —
measured as a no-op on the hot paths (the ``repro bench`` CI gate covers
this).

This module is intentionally stdlib-only (no ``repro.core`` imports) so
the core pipeline can depend on it without import cycles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

ERROR_KINDS = frozenset({"oserror", "memoryerror", "kill", "stall"})
BYTE_KINDS = frozenset({"corrupt", "truncate"})
SCHED_KINDS = frozenset({"delay", "drop"})
KINDS = ERROR_KINDS | BYTE_KINDS | SCHED_KINDS

#: sites a spec may name (``merge`` matches any ``merge.level.<k>``)
SITES = ("shard.freeze", "merge", "serialize", "sched")

#: ``times`` value meaning "never exhausts" (a permanent fault)
FOREVER = -1

#: corruption never touches the first bytes of an artifact: the fixed
#: header (magic/version/flags) and the tiny base_rank/nranks varints are
#: not CRC-protected, and a flip there could *silently* change meaning
#: instead of being detected.  Payload sections are all checksummed, so
#: any flip past this offset is guaranteed to be caught.
_CORRUPT_HEADER_SKIP = 16


class FaultError(Exception):
    """Base of every injected failure (mixed into concrete classes)."""


class InjectedOSError(FaultError, OSError):
    """A transient I/O failure raised at an injection point."""


class InjectedMemoryError(FaultError, MemoryError):
    """A transient allocation failure raised at an injection point."""


class WorkerDiedError(FaultError, RuntimeError):
    """A merge/freeze worker died mid-task (modelled, not a real crash)."""


class WorkerStallError(WorkerDiedError):
    """A worker hung past its deadline; treated like a death and retried."""


_ERROR_CLASSES = {
    "oserror": InjectedOSError,
    "memoryerror": InjectedMemoryError,
    "kill": WorkerDiedError,
    "stall": WorkerStallError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault: *kind* at *site*, firing up to *times* times."""

    kind: str
    site: str
    #: fires this many times then passes; FOREVER (-1) never exhausts
    times: int = 1
    #: restrict to one rank (sites that carry a rank: shard.freeze, sched)
    rank: Optional[int] = None
    #: chance of firing per opportunity (drawn from the plan's seeded RNG)
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {sorted(KINDS)}")
        if not any(self.site == s or self.site.startswith(s + ".")
                   for s in SITES):
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"known: {SITES} (merge.level.<k> allowed)")
        if self.kind in SCHED_KINDS and not self.site.startswith("sched"):
            raise ValueError(f"{self.kind!r} faults only apply to 'sched'")
        if self.site.startswith("sched") and self.kind not in SCHED_KINDS:
            raise ValueError(f"{self.kind!r} cannot target 'sched'")
        if self.times == 0 or self.times < FOREVER:
            raise ValueError(f"times must be positive or FOREVER (-1), "
                             f"got {self.times}")
        if self.times == FOREVER and self.kind in SCHED_KINDS:
            raise ValueError("scheduler faults must be bounded "
                             "(times=FOREVER would livelock the run)")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], "
                             f"got {self.probability}")

    def matches(self, site: str, rank: Optional[int]) -> bool:
        if self.site != site and not site.startswith(self.site + "."):
            return False
        return self.rank is None or rank is None or self.rank == rank

    def describe(self) -> str:
        out = f"{self.kind}@{self.site}"
        if self.times != 1:
            out += f"*{'forever' if self.times == FOREVER else self.times}"
        if self.rank is not None:
            out += f":rank={self.rank}"
        if self.probability < 1.0:
            out += f":p={self.probability:g}"
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative set of faults to inject into one run."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def empty(self) -> bool:
        return not self.specs

    def describe(self) -> str:
        body = "; ".join(s.describe() for s in self.specs) or "<empty>"
        return f"FaultPlan(seed={self.seed}: {body})"

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # -- construction --------------------------------------------------------------

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse the CLI spec syntax: ``kind@site[*times][:key=val]...``
        entries separated by ``;``.

        Examples::

            oserror@shard.freeze*2
            kill@merge.level.0
            corrupt@shard.freeze:rank=1
            kill@shard.freeze*forever:rank=2      (permanent -> degraded)
            delay@sched*8; drop@sched*4
        """
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            head, *opts = chunk.split(":")
            if "@" not in head:
                raise ValueError(
                    f"bad fault spec {chunk!r}: expected kind@site")
            kind, site = head.split("@", 1)
            times = 1
            if "*" in site:
                site, times_s = site.split("*", 1)
                times = FOREVER if times_s == "forever" else int(times_s)
            kwargs: dict = {}
            for opt in opts:
                if "=" not in opt:
                    raise ValueError(f"bad fault option {opt!r} in {chunk!r}")
                k, v = opt.split("=", 1)
                if k == "rank":
                    kwargs["rank"] = int(v)
                elif k in ("p", "probability"):
                    kwargs["probability"] = float(v)
                elif k == "times":
                    kwargs["times"] = FOREVER if v == "forever" else int(v)
                else:
                    raise ValueError(f"unknown fault option {k!r}")
            if "times" not in kwargs:
                kwargs["times"] = times
            specs.append(FaultSpec(kind.strip(), site.strip(), **kwargs))
        return cls(specs=tuple(specs), seed=seed)

    @classmethod
    def random(cls, seed: int, nprocs: int = 8,
               allow_permanent: bool = True) -> "FaultPlan":
        """A deterministic pseudo-random plan for the chaos matrix.

        Transient faults are drawn from every site; permanent (rank-
        losing) faults are always pinned to a specific rank so the run
        degrades instead of collapsing entirely.  Serialize faults are
        kept below the default retry budget — an unserializable trace is
        the one failure this system cannot degrade around.
        """
        rng = random.Random(seed)
        vocab = [
            lambda: FaultSpec("oserror", "shard.freeze",
                              times=rng.randint(1, 2),
                              rank=rng.randrange(nprocs)
                              if rng.random() < 0.5 else None),
            lambda: FaultSpec("memoryerror", "shard.freeze",
                              times=rng.randint(1, 2)),
            lambda: FaultSpec("corrupt", "shard.freeze",
                              rank=rng.randrange(nprocs)),
            lambda: FaultSpec("truncate", "shard.freeze",
                              rank=rng.randrange(nprocs)),
            lambda: FaultSpec("kill", "merge", times=rng.randint(1, 3)),
            lambda: FaultSpec("stall", "merge", times=rng.randint(1, 2)),
            lambda: FaultSpec("kill", f"merge.level.{rng.randrange(3)}",
                              times=rng.randint(1, 2)),
            lambda: FaultSpec("oserror", "serialize", times=1),
            lambda: FaultSpec("memoryerror", "serialize", times=1),
            lambda: FaultSpec("delay", "sched", times=rng.randint(1, 16)),
            lambda: FaultSpec("drop", "sched", times=rng.randint(1, 4)),
        ]
        if allow_permanent:
            vocab.append(lambda: FaultSpec(
                "kill", "shard.freeze", times=FOREVER,
                rank=rng.randrange(nprocs)))
        n = rng.randint(1, 3)
        return cls(specs=tuple(rng.choice(vocab)() for _ in range(n)),
                   seed=seed)


class FaultInjector:
    """An armed :class:`FaultPlan`: consulted at every injection point,
    firing deterministically from the plan's seed.

    One injector instance is shared by everything participating in a run
    (scheduler, tracer, pipeline), so the sequence of fires — and thus
    the failure the run experiences — is a pure function of
    (program, seed, plan)."""

    __slots__ = ("plan", "rng", "_remaining", "fired")

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self._remaining = [s.times for s in plan.specs]
        #: audit log of every fired fault, for diagnostics and reports
        self.fired: list[str] = []

    @property
    def wants_sched(self) -> bool:
        """Whether the scheduler needs to consult this injector at all
        (False keeps the scheduler loop entirely fault-free)."""
        return any(s.site.startswith("sched") for s in self.plan.specs)

    @property
    def exhausted(self) -> bool:
        return all(r == 0 for r in self._remaining)

    def _take(self, site: str, rank: Optional[int],
              kinds: frozenset) -> Optional[FaultSpec]:
        for i, spec in enumerate(self.plan.specs):
            if self._remaining[i] == 0 or spec.kind not in kinds:
                continue
            if not spec.matches(site, rank):
                continue
            if spec.probability < 1.0 and \
                    self.rng.random() >= spec.probability:
                continue
            if self._remaining[i] > 0:
                self._remaining[i] -= 1
            where = site if rank is None else f"{site}[rank={rank}]"
            self.fired.append(f"{spec.kind}@{where}")
            return spec
        return None

    # -- injection points ----------------------------------------------------------

    def raise_failure(self, site: str, rank: Optional[int] = None) -> None:
        """Error-kind injection: raises if an error fault fires here."""
        spec = self._take(site, rank, ERROR_KINDS)
        if spec is not None:
            raise _ERROR_CLASSES[spec.kind](
                f"injected {spec.kind} at {site}"
                + (f" (rank {rank})" if rank is not None else ""))

    def corrupt_bytes(self, site: str, data: bytes,
                      rank: Optional[int] = None) -> Optional[bytes]:
        """Byte-kind injection: a damaged copy of *data*, or None when no
        corruption fault fires here.  Damage always lands where the
        format's CRC/length checks are guaranteed to catch it."""
        spec = self._take(site, rank, BYTE_KINDS)
        if spec is None:
            return None
        n = len(data)
        if spec.kind == "truncate":
            lo = min(_CORRUPT_HEADER_SKIP, n - 1) if n > 1 else 0
            return data[:self.rng.randrange(lo, n)] if n else data
        if n <= _CORRUPT_HEADER_SKIP:
            return data + b"\xff"  # too small to flip safely: grow instead
        off = self.rng.randrange(_CORRUPT_HEADER_SKIP, n)
        mut = bytearray(data)
        mut[off] ^= 1 << self.rng.randrange(8)
        return bytes(mut)

    def sched_action(self, rank: int) -> Optional[str]:
        """Scheduler injection: ``"delay"``, ``"drop"`` or None."""
        spec = self._take("sched", rank, SCHED_KINDS)
        return spec.kind if spec is not None else None


def arm(plan) -> Optional[FaultInjector]:
    """Normalize a plan-or-injector-or-None into an injector-or-None."""
    if plan is None:
        return None
    if isinstance(plan, FaultInjector):
        return plan
    if isinstance(plan, FaultPlan):
        return FaultInjector(plan) if plan.specs else None
    raise TypeError(f"expected FaultPlan or FaultInjector, "
                    f"got {type(plan).__name__}")


def iter_specs(plans: Iterable[FaultPlan]) -> Iterable[FaultSpec]:
    for p in plans:
        yield from p.specs


# re-exported dataclass field helper kept out of the public surface
_ = field
