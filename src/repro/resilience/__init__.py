"""Resilience subsystem: fault injection, retry, and salvage.

Three cooperating layers make the tracer degrade gracefully instead of
crashing:

- :mod:`repro.resilience.faults` — a deterministic, seeded
  fault-injection harness (:class:`FaultPlan` / :class:`FaultInjector`)
  consulted at named injection points in the pipeline, the tracer, and
  the simulated-MPI scheduler.
- :mod:`repro.resilience.retry` — :class:`RetryPolicy` and
  :class:`TaskSupervisor`: bounded exponential backoff with seeded
  jitter, per-task deadlines, and a circuit breaker that falls back to
  serial merging after consecutive worker failures.
- :mod:`repro.resilience.salvage` — :class:`SalvageReport`, the precise
  accounting (lost ranks, lost sections, call deficit) attached to any
  degraded result, plus the salvage read modes on
  ``TraceFile.from_bytes`` / ``RankShard.from_bytes``.

:mod:`repro.resilience.chaos` closes the loop: it runs workloads under
random seeded plans and asserts the chaos property — byte-identical
recovery or an explicit, conservation-checked degraded result, never an
unhandled exception.

Everything except :mod:`~repro.resilience.chaos` is stdlib-only so
``repro.core`` can import it without cycles.
"""

from .faults import (FOREVER, FaultError, FaultInjector, FaultPlan,
                     FaultSpec, InjectedMemoryError, InjectedOSError,
                     WorkerDiedError, WorkerStallError, arm)
from .retry import RetryPolicy, SupervisorStats, TaskSupervisor
from .salvage import SalvageReport

__all__ = [
    "FOREVER",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedMemoryError",
    "InjectedOSError",
    "RetryPolicy",
    "SalvageReport",
    "SupervisorStats",
    "TaskSupervisor",
    "WorkerDiedError",
    "WorkerStallError",
    "arm",
]
