"""The ScalaTrace-style baseline tracer.

This implements the design points of ScalaTrace (V2/V4) that the paper's
comparison hinges on, at the fidelity level of Table 1:

* **Partial function coverage** — the Test* family, probes, cancels and
  object-name/query calls are NOT recorded (Table 1: 125 of 446 standard
  functions; the intro's ``MPI_Testsome`` example is exactly what gets
  lost).  Memory-management calls are never observed.
* **Partial parameter coverage** — memory pointers are dropped entirely
  (Table 1 row "memory pointer: ×"); requests draw ids from ONE pool per
  rank (the default scheme §3.4.3 criticises), so non-deterministic
  completion orders leak into the event stream and break pattern
  matching; requests consumed by unrecorded Test* calls never return
  their ids (the tracer cannot see the completion), faithfully degrading
  compression further; src/dst are offset-encoded as ScalaTrace's
  location-independent RSDs do; tags are retained (the paper configured
  ScalaTrace to retain them).
* **RSD/PRSD intra-process compression** (see :mod:`repro.scalatrace.rsd`).
* **Inter-process merge by whole-trace identity with rank lists** — no
  structural sharing across differing traces, which is what produces the
  linear growth in Fig 5/6.

Like the real ScalaTrace runs in §4.3 (which crashed in ``MPI_Waitall``
for Sedov/Cellular until the wrapper was commented out), the baseline
accepts a ``record_waitall=False`` switch; the FLASH benchmarks use it to
mirror the paper's setup.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.packing import write_uvarint
from ..mpisim import constants as C
from ..mpisim import funcs as F
from ..mpisim.comm import Comm
from ..mpisim.datatypes import Datatype
from ..mpisim.group import Group
from ..mpisim.hooks import TracerHooks
from ..mpisim.ops import Op
from ..mpisim.request import Request
from ..mpisim.status import Status
from ..obs import NULL_REGISTRY, MetricsRegistry, PhaseProfiler
from .rsd import RSDCompressor

#: functions the baseline does NOT record (sim-scale image of Table 1's
#: coverage gap; the full-standard number is funcs.SCALATRACE_SUPPORTED)
UNRECORDED = frozenset((
    "MPI_Test", "MPI_Testall", "MPI_Testany", "MPI_Testsome",
    "MPI_Iprobe", "MPI_Probe", "MPI_Cancel", "MPI_Request_get_status",
    "MPI_Comm_set_name", "MPI_Comm_get_name", "MPI_Get_processor_name",
    "MPI_Get_count", "MPI_Initialized",
    # one-sided communication: outside ScalaTrace's recorded surface
    "MPI_Win_create", "MPI_Win_allocate", "MPI_Win_free",
    "MPI_Win_set_name", "MPI_Win_fence", "MPI_Put", "MPI_Get",
    "MPI_Accumulate", "MPI_Win_lock", "MPI_Win_unlock",
))

SCALATRACE_RECORDED = frozenset(F.FUNCS) - UNRECORDED


@dataclass
class ScalaTraceResult:
    """Finalize products + perf accounting for the baseline."""

    trace_bytes: bytes
    total_calls: int
    recorded_calls: int
    n_unique_traces: int
    time_intra: float
    time_merge: float
    per_rank_entries: list[int] = field(default_factory=list)

    @property
    def trace_size(self) -> int:
        return len(self.trace_bytes)


class ScalaTraceTracer(TracerHooks):
    """Baseline tracer implementing ScalaTrace's published design."""

    def __init__(self, *, max_window: int = 32, record_waitall: bool = True,
                 relative_ranks: bool = True,
                 metrics: Optional[MetricsRegistry] = None):
        self.max_window = max_window
        self.record_waitall = record_waitall
        #: ScalaTrace's location-independent encoding of src/dst
        self.relative_ranks = relative_ranks
        #: same instrument as Pilgrim's (scoped "scalatrace"), so Fig 7-
        #: style overhead comparisons come from one registry
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.obs = self.metrics.scope("scalatrace")
        self.profiler = PhaseProfiler(self.obs)
        self.nprocs = 0
        self.compressors: list[RSDCompressor] = []
        self._req_active: list[dict[int, int]] = []
        self._req_pool: list = []
        self.total_calls = 0
        self.recorded_calls = 0
        self.time_intra = 0.0
        self.result: Optional[ScalaTraceResult] = None

    # -- hooks ---------------------------------------------------------------------

    def on_run_start(self, sim) -> None:
        self.nprocs = sim.nprocs
        self.compressors = [RSDCompressor(self.max_window)
                            for _ in range(sim.nprocs)]
        # ONE id pool per rank for all requests (no per-signature pools)
        from ..core.symbolic import IdPool
        self._req_active = [{} for _ in range(sim.nprocs)]
        self._req_pool = [IdPool() for _ in range(sim.nprocs)]

    def on_call(self, rank: int, fname: str, args: dict[str, Any],
                t0: float, t1: float) -> None:
        self.total_calls += 1
        if fname in UNRECORDED:
            return
        if fname == "MPI_Waitall" and not self.record_waitall:
            return
        tick = _time.perf_counter()
        sig = self._encode(rank, fname, args)
        self.compressors[rank].append(sig)
        if fname in self._WAIT_FNAMES:
            self._release_consumed(rank, args)
        self.recorded_calls += 1
        self.time_intra += _time.perf_counter() - tick

    def on_run_end(self, sim) -> None:
        self.result = self.finalize()

    # -- encoding ----------------------------------------------------------------------

    _WAIT_FNAMES = frozenset((
        "MPI_Wait", "MPI_Waitall", "MPI_Waitany", "MPI_Waitsome",
        "MPI_Request_free",
    ))

    def _enc_request(self, rank: int, req: Optional[Request]) -> Any:
        if req is None:
            return None
        key = id(req)
        table = self._req_active[rank]
        got = table.get(key)
        if got is None:
            num = self._req_pool[rank].acquire()
            # hold a strong reference: ids are keyed by id(request), and a
            # collected fire-and-forget request must not alias a new one
            table[key] = (num, req)
            return num
        return got[0]

    def _enc_status(self, st: Optional[Status], ctx: int) -> Any:
        """Statuses keep (source, tag); sources go through the same
        location-independent offset encoding as src/dst arguments."""
        if not isinstance(st, Status):
            return None
        src = st.MPI_SOURCE
        if self.relative_ranks and src not in (C.PROC_NULL, C.ANY_SOURCE):
            return (("d", src - ctx), st.MPI_TAG)
        return (src, st.MPI_TAG)

    def _release_consumed(self, rank: int, args: dict[str, Any]) -> None:
        reqs: list[Optional[Request]] = []
        if args.get("request") is not None:
            reqs.append(args["request"])
        reqs.extend(args.get("array_of_requests") or ())
        table = self._req_active[rank]
        for req in reqs:
            if req is None or req.persistent:
                continue
            if req.consumed or req.freed:
                got = table.pop(id(req), None)
                if got is not None:
                    self._req_pool[rank].release(got[0])

    def _encode(self, rank: int, fname: str, args: dict[str, Any]) -> tuple:
        spec = F.FUNCS[fname]
        comm = args.get("comm") or args.get("comm_old") \
            or args.get("local_comm") or args.get("intercomm")
        ctx = rank
        if isinstance(comm, Comm):
            cr = comm.group.rank_of(rank)
            if cr != C.UNDEFINED:
                ctx = cr
        parts: list[Any] = [spec.fid]
        for p in spec.params:
            v = args.get(p.name)
            kind = p.kind
            if kind == F.K_PTR:
                continue  # memory pointers are not collected (Table 1)
            if kind in (F.K_COMM, F.K_NEWCOMM):
                parts.append(v.cid if isinstance(v, Comm) else -1)
            elif kind in (F.K_DATATYPE, F.K_NEWTYPE):
                parts.append(v.handle if isinstance(v, Datatype) else -1)
            elif kind == F.K_GROUP:
                parts.append(tuple(v.ranks) if isinstance(v, Group) else None)
            elif kind == F.K_RANK:
                if self.relative_ranks and isinstance(v, int) \
                        and v not in (C.PROC_NULL, C.ANY_SOURCE, C.UNDEFINED):
                    parts.append(("d", v - ctx))
                else:
                    parts.append(v)
            elif kind == F.K_ROOT:
                # rank-valued but usually constant: offset-encode only on
                # exact match (comm_rank output, root == me)
                if self.relative_ranks and v == ctx:
                    parts.append(("d", 0))
                else:
                    parts.append(v)
            elif kind == F.K_REQUEST:
                parts.append(self._enc_request(rank, v))
            elif kind == F.K_REQUESTV:
                parts.append(tuple(self._enc_request(rank, r)
                                   for r in (v or ())))
            elif kind == F.K_STATUS:
                parts.append(self._enc_status(v, ctx))
            elif kind == F.K_STATUSV:
                if v is None:
                    parts.append(None)
                else:
                    parts.append(tuple(self._enc_status(st, ctx)
                                       for st in v))
            elif kind == F.K_OP:
                parts.append(v.handle if isinstance(v, Op) else v)
            elif kind in (F.K_INTV, F.K_INDEXV):
                parts.append(tuple(v) if v is not None else None)
            elif kind == F.K_FLAG:
                parts.append(bool(v))
            else:
                parts.append(v)
        return tuple(parts)

    # -- finalize --------------------------------------------------------------------------

    def finalize(self) -> ScalaTraceResult:
        prof = self.profiler
        prof.add("intra", self.time_intra, count=self.recorded_calls)
        with prof.phase("merge") as ph_merge:
            frozen = [c.freeze() for c in self.compressors]
            blobs = [RSDCompressor.serialize(f) for f in frozen]
            # inter-process merge: identical whole traces share one copy,
            # annotated with a rank list; differing traces are stored
            # verbatim
            unique: dict[bytes, list[int]] = {}
            order: list[bytes] = []
            for r, blob in enumerate(blobs):
                if blob not in unique:
                    unique[blob] = []
                    order.append(blob)
                unique[blob].append(r)
            out = bytearray(b"SCLT")
            write_uvarint(out, self.nprocs)
            write_uvarint(out, len(order))
            for blob in order:
                ranks = unique[blob]
                write_uvarint(out, len(ranks))
                for r in ranks:
                    write_uvarint(out, r)
                write_uvarint(out, len(blob))
                out.extend(blob)
        t_merge = ph_merge.wall
        if self.obs.enabled:
            self.obs.counter("calls").inc(self.total_calls)
            self.obs.counter("recorded_calls").inc(self.recorded_calls)
            self.obs.gauge("ranks").set(self.nprocs)
            self.obs.gauge("unique_traces").set(len(order))
            self.obs.gauge("trace_bytes").set(len(out))
            self.obs.timer("total").add(self.time_intra + t_merge)
        return ScalaTraceResult(
            trace_bytes=bytes(out),
            total_calls=self.total_calls,
            recorded_calls=self.recorded_calls,
            n_unique_traces=len(order),
            time_intra=self.time_intra,
            time_merge=t_merge,
            per_rank_entries=[c.n_entries for c in self.compressors],
        )
