"""``repro.scalatrace`` — the ScalaTrace-style baseline tracer.

Implements the comparison system of the paper's evaluation at the design
fidelity of Table 1: RSD/PRSD intra-process loop compression, partial
function/parameter coverage, single request-id pool, and identical-trace
inter-process merging.  See :mod:`repro.scalatrace.tracer` for the exact
modelled design points.
"""

from .recorder import RecorderResult, RecorderTracer
from .rsd import RSDCompressor, expand_entries
from .tracer import SCALATRACE_RECORDED, UNRECORDED, ScalaTraceResult, ScalaTraceTracer

__all__ = ["RSDCompressor", "RecorderResult", "RecorderTracer",
           "SCALATRACE_RECORDED", "ScalaTraceResult", "ScalaTraceTracer",
           "UNRECORDED", "expand_entries"]
