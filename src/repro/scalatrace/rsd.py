"""Regular Section Descriptor (RSD/PRSD) loop compression.

ScalaTrace's intra-process compression represents repeating communication
events as RSDs — ``<count, body>`` loop descriptors that may nest (power
RSDs).  This module implements the online greedy variant: after each
appended event the compressor tries to fold the tail of the trace into a
loop, checking window sizes up to ``max_window``.

The per-event cost is O(max_window²) in the worst case, and genuinely
degrades on long irregular bursts — which is not a bug: it is the
mechanism behind ScalaTrace's measured slowdown on FLASH's AMR
refinement bursts (paper Fig 7 d/e), and the benchmark harness measures
it as real time.

Entries are nested tuples so equality is structural and hashing is cheap:

* event: ``("E", sig)``
* loop:  ``("L", count, (entry, entry, ...))``
"""

from __future__ import annotations


from ..core.packing import write_uvarint, write_value

EVENT = "E"
LOOP = "L"


def event(sig: tuple) -> tuple:
    return (EVENT, sig)


def loop(count: int, body: tuple) -> tuple:
    return (LOOP, count, body)


class RSDCompressor:
    """Online tail-folding loop compression over one rank's events."""

    def __init__(self, max_window: int = 32):
        self.max_window = max_window
        self.entries: list[tuple] = []
        self.n_events = 0

    def append(self, sig: tuple) -> None:
        self.entries.append((EVENT, sig))
        self.n_events += 1
        self._fold_tail()

    def _fold_tail(self) -> None:
        """Repeatedly fold the tail while folds apply (enables nesting)."""
        entries = self.entries
        folded = True
        while folded:
            folded = False
            n = len(entries)
            # Case 1: tail repeats the body of an immediately preceding loop
            for w in range(1, min(self.max_window, n - 1) + 1):
                prev = entries[n - w - 1]
                if prev[0] == LOOP and len(prev[2]) == w \
                        and tuple(entries[n - w:]) == prev[2]:
                    del entries[n - w:]
                    entries[-1] = (LOOP, prev[1] + 1, prev[2])
                    folded = True
                    break
            if folded:
                continue
            # Case 2: the last w entries repeat the w before them
            n = len(entries)
            for w in range(1, min(self.max_window, n // 2) + 1):
                if entries[n - w:] == entries[n - 2 * w:n - w]:
                    body = tuple(entries[n - w:])
                    del entries[n - 2 * w:]
                    entries.append((LOOP, 2, body))
                    folded = True
                    break

    # -- serialization ---------------------------------------------------------------

    def freeze(self) -> tuple:
        """Immutable snapshot of the compressed trace."""
        return tuple(self.entries)

    @staticmethod
    def serialize(entries: tuple) -> bytes:
        out = bytearray()
        _write_entries(out, entries)
        return bytes(out)

    @property
    def n_entries(self) -> int:
        return len(self.entries)


def _write_entries(out: bytearray, entries: tuple) -> None:
    write_uvarint(out, len(entries))
    for e in entries:
        if e[0] == EVENT:
            out.append(0)
            write_value(out, e[1])
        else:
            out.append(1)
            write_uvarint(out, e[1])
            _write_entries(out, e[2])


def expand_entries(entries: tuple) -> list[tuple]:
    """Decompress an RSD trace back to the flat event-signature list."""
    out: list[tuple] = []
    for e in entries:
        if e[0] == EVENT:
            out.append(e[1])
        else:
            body = expand_entries(e[2])
            out.extend(body * e[1])
    return out
