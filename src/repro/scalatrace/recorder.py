"""Recorder-style baseline tracer (paper §5, related work).

Recorder 2.0 (Wang et al., IPDPSW'20) compresses by matching each new
event against a **sliding window** of recent events: a repeat is stored
as a back-reference, anything else verbatim.  The paper's critique,
reproduced here mechanically:

* "it can not detect loop structures nor repetitions at long ranges" —
  a back-reference only reaches ``window`` events back, and repeats are
  stored per occurrence (O(N) tokens for a loop of N iterations, vs
  Pilgrim's O(1) grammar);
* "do[es] not perform inter-process compression" — per-rank streams are
  written side by side, so trace size is linear in P even for identical
  ranks.

Coverage is Pilgrim-like (Recorder traces every call it wraps), so the
interesting comparison is purely the compression scheme.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.packing import write_uvarint, write_value
from ..mpisim.hooks import TracerHooks
from .tracer import ScalaTraceTracer


@dataclass
class RecorderResult:
    trace_bytes: bytes
    total_calls: int
    time_intra: float
    per_rank_tokens: list[int] = field(default_factory=list)

    @property
    def trace_size(self) -> int:
        return len(self.trace_bytes)


class RecorderTracer(TracerHooks):
    """Sliding-window backreference compression, per rank, no merging."""

    def __init__(self, *, window: int = 128):
        self.window = window
        self.nprocs = 0
        self._windows: list[deque] = []
        #: per-rank token stream: ("ref", distance) or ("lit", sig)
        self._tokens: list[list[tuple]] = []
        self._encoder: Optional[ScalaTraceTracer] = None
        self.total_calls = 0
        self.time_intra = 0.0
        self.result: Optional[RecorderResult] = None

    def on_run_start(self, sim) -> None:
        self.nprocs = sim.nprocs
        self._windows = [deque(maxlen=self.window)
                         for _ in range(sim.nprocs)]
        self._tokens = [[] for _ in range(sim.nprocs)]
        # borrow the baseline's argument encoding (full coverage variant)
        self._encoder = ScalaTraceTracer()
        self._encoder.on_run_start(sim)

    def on_call(self, rank: int, fname: str, args: dict[str, Any],
                t0: float, t1: float) -> None:
        self.total_calls += 1
        tick = _time.perf_counter()
        sig = self._encoder._encode(rank, fname, args)
        if fname in self._encoder._WAIT_FNAMES:
            self._encoder._release_consumed(rank, args)
        win = self._windows[rank]
        try:
            # most-recent-first search, as Recorder's window match does
            distance = None
            for i in range(len(win) - 1, -1, -1):
                if win[i] == sig:
                    distance = len(win) - i
                    break
        except TypeError:
            distance = None
        if distance is not None:
            self._tokens[rank].append(("ref", distance))
        else:
            self._tokens[rank].append(("lit", sig))
        win.append(sig)
        self.time_intra += _time.perf_counter() - tick

    def on_run_end(self, sim) -> None:
        out = bytearray(b"RCDR")
        write_uvarint(out, self.nprocs)
        for rank in range(self.nprocs):
            write_uvarint(out, len(self._tokens[rank]))
            for kind, payload in self._tokens[rank]:
                if kind == "ref":
                    out.append(1)
                    write_uvarint(out, payload)
                else:
                    out.append(0)
                    write_value(out, payload)
        self.result = RecorderResult(
            trace_bytes=bytes(out),
            total_calls=self.total_calls,
            time_intra=self.time_intra,
            per_rank_tokens=[len(t) for t in self._tokens],
        )
