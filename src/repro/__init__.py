"""Reproduction of *Pilgrim: Scalable and (near) Lossless MPI Tracing*
(Wang, Balaji, Snir — SC '21) on a simulated MPI substrate.

The supported programmatic entry point is the :mod:`repro.api` facade,
re-exported here::

    import repro

    result = repro.trace("stencil2d", 16)          # -> TraceResult
    decoder = repro.decode(result.trace_bytes)
    report = repro.verify("stencil2d", 16)         # lossless round-trip

Packages:

* :mod:`repro.api` — the stable facade (trace/decode/verify/compare/
  bench/replay); its signatures are snapshot-pinned in CI.
* :mod:`repro.replay` — trace re-execution: the fixed-point replayer
  and the what-if divergence engine (``repro.replay(...)``).
* :mod:`repro.mpisim` — the simulated MPI runtime (substrate).
* :mod:`repro.core` — the Pilgrim tracer: CST + Sequitur CFG compression,
  symbolic ids, timing grammars, inter-process merge, decoder.
* :mod:`repro.resilience` — fault injection, retry supervision, and
  partial-trace salvage (tracing under failure).
* :mod:`repro.ingest` — the streaming trace-ingest service: layered
  framing → session → fold, surfaced as ``serve``/``push``.
* :mod:`repro.store` — the content-addressed cross-run trace store:
  structural dedup of format-v2 sections, run manifests, drift queries.
* :mod:`repro.scalatrace` — the ScalaTrace-style baseline tracer.
* :mod:`repro.workloads` — stencils, OSU, NPB, FLASH, MILC skeletons.
* :mod:`repro.analysis` — size accounting, overhead timers, report tables.
* :mod:`repro.obs` — self-instrumentation: metrics registry, pipeline
  phase profiler, and the runtime event log.
"""

from .api import (ReplayOptions, ReplayResult, TraceResult, TracerOptions,
                  VerifyReport, compare, decode, push, replay, serve,
                  store, trace, verify)
from .resilience import FaultPlan, RetryPolicy, SalvageReport

# ``repro.bench`` is the benchmark subpackage, made callable so it also
# serves as the facade verb (``repro.bench("hotpath")``).
from . import bench

__version__ = "1.1.0"

__all__ = [
    "FaultPlan", "ReplayOptions", "ReplayResult", "RetryPolicy",
    "SalvageReport", "TraceResult", "TracerOptions", "VerifyReport",
    "bench", "compare", "decode", "push", "replay", "serve", "store",
    "trace", "verify", "__version__",
]
