"""Reproduction of *Pilgrim: Scalable and (near) Lossless MPI Tracing*
(Wang, Balaji, Snir — SC '21) on a simulated MPI substrate.

Packages:

* :mod:`repro.mpisim` — the simulated MPI runtime (substrate).
* :mod:`repro.core` — the Pilgrim tracer: CST + Sequitur CFG compression,
  symbolic ids, timing grammars, inter-process merge, decoder.
* :mod:`repro.scalatrace` — the ScalaTrace-style baseline tracer.
* :mod:`repro.workloads` — stencils, OSU, NPB, FLASH, MILC skeletons.
* :mod:`repro.analysis` — size accounting, overhead timers, report tables.
* :mod:`repro.obs` — self-instrumentation: metrics registry, pipeline
  phase profiler, and the runtime event log.
"""

__version__ = "1.0.0"
