"""MILC su3_rmd (clover_dynamical) communication skeleton (§4.3, Fig 9).

Lattice QCD on a 4D space-time torus: the rank grid is a 4D
decomposition, and each molecular-dynamics step runs conjugate-gradient
solver iterations whose dominant communication is the dslash operator —
eight-direction nearest-neighbour halo exchanges (Isend/Irecv/Waitall)
interleaved with frequent global dot-product all-reduces.

Scaling behaviour, matching the paper's observations:

* **weak scaling** (fixed local lattice): every rank's message sizes are
  identical at any P, so the signature/grammar population is constant —
  the paper saw 27 unique grammars and a flat 627KB at 16K ranks.
* **strong scaling** (fixed global lattice): the local lattice dims — and
  with them the per-direction message sizes — change with the
  decomposition, producing staged growth (27 → 54 → 108 unique grammars
  in the paper as the partition geometry crosses thresholds).
"""

from __future__ import annotations

from ..mpisim import datatypes as dt
from ..mpisim import ops
from ..mpisim.topology import dims_create
from .base import Workload, grid_partition, register

#: su3 matrix-vector payload bytes per site (3 complex doubles)
SITE_BYTES = 48


@register("milc_su3_rmd")
def milc_su3_rmd(nprocs: int, *, steps: int = 4, cg_iters: int = 10,
                 global_dims: tuple = (), local_dims: tuple = (),
                 ) -> Workload:
    """su3_rmd skeleton.

    Pass ``global_dims`` for strong scaling (global lattice fixed, local
    = global/decomposition) or ``local_dims`` for weak scaling (local
    lattice fixed).  Defaults to weak scaling with a 8^3x16 local
    lattice.
    """
    pdims = dims_create(nprocs, 4)
    mode = "strong" if global_dims else "weak"

    def local_dims_of(coords: tuple[int, ...]) -> tuple[int, ...]:
        if global_dims:
            # strong scaling: when the partition does not divide the
            # global lattice evenly, low-coordinate ranks get one extra
            # site per dimension — this is what creates the paper's
            # staged unique-grammar growth (27 -> 54 -> 108): message
            # sizes become coordinate-dependent at uneven geometries
            return tuple(max(grid_partition(g, p, c), 1)
                         for g, p, c in zip(global_dims, pdims, coords))
        return tuple(local_dims) if local_dims else (8, 8, 8, 16)

    def program(m):
        me = m.comm_rank()
        # 4D coordinates, row-major like dims_create/cart ordering
        rem = me
        coords = []
        for d in reversed(pdims):
            coords.append(rem % d)
            rem //= d
        coords = tuple(reversed(coords))
        local = local_dims_of(coords)
        vol = 1
        for d in local:
            vol *= d
        # per-direction halo size = volume of the orthogonal 3D slice
        face_elems = [max(vol // local[d], 1) * SITE_BYTES // 8
                      for d in range(4)]

        def neighbor(d, s):
            c = list(coords)
            c[d] = (c[d] + s) % pdims[d]
            r = 0
            for dim, x in zip(pdims, c):
                r = r * dim + x
            return r

        nbrs = [(d, s, neighbor(d, s)) for d in range(4) for s in (-1, +1)]
        max_face = max(face_elems)
        sbuf = m.malloc(8 * max_face * 8)
        rbuf = m.malloc(8 * max_face * 8)

        def dslash():
            reqs = []
            for k, (d, s, nb) in enumerate(nbrs):
                if pdims[d] == 1:
                    continue  # self-neighbour: MILC skips the gather
                # the halo arriving from (d, s) was sent in (d, -s) = k^1
                reqs.append(m.irecv(rbuf + k * max_face * 8, face_elems[d],
                                    dt.DOUBLE, source=nb, tag=20080 + (k ^ 1)))
            for k, (d, s, nb) in enumerate(nbrs):
                if pdims[d] == 1:
                    continue
                reqs.append(m.isend(sbuf + k * max_face * 8, face_elems[d],
                                    dt.DOUBLE, dest=nb, tag=20080 + k))
            yield from m.waitall(reqs)
            m.compute(1e-8 * vol)

        for _step in range(steps):
            # refresh momenta: global sum over the lattice
            yield from m.allreduce(sbuf, rbuf, 4, dt.DOUBLE, ops.SUM)
            for _cg in range(cg_iters):
                yield from dslash()
                # CG dot products: two all-reduces per solver iteration
                yield from m.allreduce(sbuf, rbuf, 1, dt.DOUBLE, ops.SUM)
                yield from m.allreduce(sbuf, rbuf, 1, dt.DOUBLE, ops.SUM)
            # plaquette measurement
            yield from m.allreduce(sbuf, rbuf, 2, dt.DOUBLE, ops.SUM)
        m.free(sbuf)
        m.free(rbuf)

    return Workload("milc_su3_rmd", nprocs, program,
                    dict(steps=steps, cg_iters=cg_iters, mode=mode,
                         pdims=pdims, global_dims=tuple(global_dims),
                         local_dims=tuple(local_dims)))
