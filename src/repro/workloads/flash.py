"""FLASH simulation skeletons: Sedov, Cellular, StirTurb (§4.3, Fig 6/7/8).

The three problems differ in exactly the ways the paper's analysis
explains their trace behaviour:

* **StirTurb** (AMR disabled): a static uniform grid — six-neighbour
  guard-cell fill plus a dt all-reduce every step.  Perfectly regular:
  constant trace size in both P and iterations (Fig 6c/f; 2 unique
  grammars in the paper).
* **Sedov** (AMR disabled): same regular hydro exchange, *plus* the
  output mechanism where rank 0 asks the owner of the minimum dt for its
  value — and "the source of that datum changes every few hundred
  iterations", introducing a new Send/Recv signature pair at a slow,
  steady rate (Fig 6d's slow growth).
* **Cellular** (AMR enabled): guard-cell partners follow the Morton-tree
  partition of :mod:`repro.workloads.amr`; every refinement phase changes
  the pattern and migrates blocks between ranks with Isend/Irecv/Waitall
  bursts — trace grows with refinement count (Fig 6e), and the bursts
  are what blow up ScalaTrace's loop matcher (Fig 7e).
"""

from __future__ import annotations

from ..mpisim import constants as C
from ..mpisim import datatypes as dt
from ..mpisim import ops
from ..mpisim.topology import dims_create
from .amr import Block, MortonTree
from .base import Workload, register


def _grid_neighbors(me: int, dims: tuple[int, int, int]) -> list[int]:
    px, py, pz = dims
    cz = me % pz
    cy = (me // pz) % py
    cx = me // (py * pz)
    out = []
    for d, (dx, dy, dz) in enumerate(((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                                      (0, -1, 0), (0, 0, 1), (0, 0, -1))):
        x, y, z = cx + dx, cy + dy, cz + dz
        if not (0 <= x < px and 0 <= y < py and 0 <= z < pz):
            out.append(C.PROC_NULL)
        else:
            out.append((x * py + y) * pz + z)
    return out


def _guardcell_fill(m, nbrs, sbuf, rbuf, elems, nbytes):
    reqs = []
    for k, nb in enumerate(nbrs):
        # the message arriving from neighbour k was sent in its opposite
        # direction k^1 (directions pair as +x/-x, +y/-y, +z/-z)
        reqs.append(m.irecv(rbuf + k * nbytes, elems, dt.DOUBLE,
                            source=nb, tag=20040 + (k ^ 1)))
    for k, nb in enumerate(nbrs):
        reqs.append(m.isend(sbuf + k * nbytes, elems, dt.DOUBLE,
                            dest=nb, tag=20040 + k))
    yield from m.waitall(reqs)


@register("flash_stirturb")
def flash_stirturb(nprocs: int, *, iters: int = 50, face_elems: int = 512
                   ) -> Workload:
    """Driven turbulence on a static uniform grid (no AMR, no I/O)."""
    dims = dims_create(nprocs, 3)

    def program(m):
        me = m.comm_rank()
        nbrs = _grid_neighbors(me, dims)
        nbytes = face_elems * dt.DOUBLE.size
        sbuf = m.malloc(6 * nbytes)
        rbuf = m.malloc(6 * nbytes)
        for _ in range(iters):
            m.compute(4e-6 * face_elems)
            yield from _guardcell_fill(m, nbrs, sbuf, rbuf, face_elems,
                                       nbytes)
            # dt reduction + stirring-phase broadcast
            yield from m.allreduce(sbuf, rbuf, 1, dt.DOUBLE, ops.MIN,
                                   data=1e-3)
            yield from m.bcast(sbuf, 8, dt.DOUBLE, root=0)
        m.free(sbuf)
        m.free(rbuf)

    return Workload("flash_stirturb", nprocs, program, dict(iters=iters))


@register("flash_sedov")
def flash_sedov(nprocs: int, *, iters: int = 60, face_elems: int = 512,
                drift_every: int = 25) -> Workload:
    """Sedov blast wave (AMR disabled) with the drifting min-dt probe.

    ``drift_every`` scales the paper's "every few hundred iterations"
    (their runs use hundreds of iterations; ours are ~5x shorter)."""
    dims = dims_create(nprocs, 3)

    def program(m):
        me = m.comm_rank()
        n = m.comm_size()
        nbrs = _grid_neighbors(me, dims)
        nbytes = face_elems * dt.DOUBLE.size
        sbuf = m.malloc(6 * nbytes)
        rbuf = m.malloc(6 * nbytes)
        dtb = m.malloc(64)
        for it in range(iters):
            m.compute(4e-6 * face_elems)
            yield from _guardcell_fill(m, nbrs, sbuf, rbuf, face_elems,
                                       nbytes)
            yield from m.allreduce(sbuf, rbuf, 1, dt.DOUBLE, ops.MIN,
                                   data=1e-3)
            # output mechanism: rank 0 fetches the min-dt datum from its
            # owner; the blast front moves, so the owner drifts over time
            owner = (1 + 3 * (it // drift_every)) % n
            if owner != 0:
                if me == 0:
                    _ = yield from m.recv(dtb, 1, dt.DOUBLE, source=owner,
                                          tag=20077)
                elif me == owner:
                    yield from m.send(dtb, 1, dt.DOUBLE, dest=0, tag=20077)
        m.free(dtb)
        m.free(sbuf)
        m.free(rbuf)

    return Workload("flash_sedov", nprocs, program,
                    dict(iters=iters, drift_every=drift_every))


@register("flash_cellular")
def flash_cellular(nprocs: int, *, iters: int = 60, face_elems: int = 256,
                   refine_every: int = 10, base_level: int = 2,
                   seed: int = 7) -> Workload:
    """Cellular detonation with PARAMESH-style AMR enabled."""

    # PARAMESH replicates the tree metadata on every process, and the
    # refinement sequence is deterministic — so the per-epoch partner and
    # migration tables are computed once here (pure metadata, no trace
    # impact) instead of once per simulated rank, and memoized across
    # repeated factory calls (the harness builds each workload several
    # times: untraced / Pilgrim / baseline).
    n_epochs = iters // refine_every + 1
    cache_key = (nprocs, n_epochs, base_level, seed)
    cached = _CELLULAR_CACHE.get(cache_key)
    if cached is not None:
        epoch_partners, epoch_moves = cached
        return _cellular_workload(nprocs, iters, face_elems, refine_every,
                                  epoch_partners, epoch_moves)
    tree = MortonTree(base_level=base_level, seed=seed)
    owner = tree.partition(nprocs)
    epoch_partners: list[list[list[int]]] = []   # [epoch][rank] -> partners
    epoch_moves: list[list[tuple[list[int], list[int]]]] = []  # in, out

    def partners_table() -> list[list[int]]:
        # guard-cell exchange is symmetric: build the unordered pair set
        # first (block adjacency can be discovered one-sidedly for
        # coarse/fine neighbours), then emit sorted per-rank lists
        pairs: set[tuple[int, int]] = set()
        for b in tree.leaves_sorted():
            o = owner[b]
            for nb in tree.block_neighbors(b):
                po = owner[nb]
                if po != o:
                    pairs.add((min(o, po), max(o, po)))
        table: list[list[int]] = [[] for _ in range(nprocs)]
        for a, c in sorted(pairs):
            table[a].append(c)
            table[c].append(a)
        for lst in table:
            lst.sort()
        return table

    for _epoch in range(n_epochs):
        epoch_partners.append(partners_table())
        old_owner = owner
        tree.refine_step()
        owner = tree.partition(nprocs)
        moves: list[tuple[list[int], list[int]]] = [([], [])
                                                    for _ in range(nprocs)]
        for b, o_new in owner.items():
            o_old = old_owner.get(b)
            if o_old is None:
                # new child: its data comes from the parent's owner
                parent = Block(b.level - 1, b.x // 2, b.y // 2, b.z // 2)
                o_old = old_owner.get(parent, o_new)
            if o_old != o_new:
                moves[o_new][0].append(o_old)   # incoming
                moves[o_old][1].append(o_new)   # outgoing
        epoch_moves.append(moves)

    _CELLULAR_CACHE[cache_key] = (epoch_partners, epoch_moves)
    return _cellular_workload(nprocs, iters, face_elems, refine_every,
                              epoch_partners, epoch_moves)


#: memoized per-epoch metadata keyed by (nprocs, n_epochs, base_level, seed)
_CELLULAR_CACHE: dict[tuple, tuple] = {}


def _cellular_workload(nprocs, iters, face_elems, refine_every,
                       epoch_partners, epoch_moves) -> Workload:
    def program(m):
        me = m.comm_rank()
        nbytes = face_elems * dt.DOUBLE.size
        sbuf = m.malloc(64 * nbytes)
        rbuf = m.malloc(64 * nbytes)
        epoch = 0
        for it in range(iters):
            m.compute(3e-6 * face_elems)
            partners = epoch_partners[epoch][me]
            reqs = []
            for k, p in enumerate(partners):
                slot = k % 32
                reqs.append(m.irecv(rbuf + slot * nbytes, face_elems,
                                    dt.DOUBLE, source=p, tag=20050))
            for k, p in enumerate(partners):
                slot = k % 32
                reqs.append(m.isend(sbuf + slot * nbytes, face_elems,
                                    dt.DOUBLE, dest=p, tag=20050))
            yield from m.waitall(reqs)
            yield from m.allreduce(sbuf, rbuf, 1, dt.DOUBLE, ops.MIN,
                                   data=1e-3)
            if (it + 1) % refine_every == 0:
                # refinement: a burst of migrations to rebalance the
                # Morton partition, then a synchronising barrier
                moves_in, moves_out = epoch_moves[epoch][me]
                reqs = []
                for k, src in enumerate(moves_in):
                    slot = k % 32
                    reqs.append(m.irecv(rbuf + slot * nbytes, face_elems,
                                        dt.DOUBLE, source=src, tag=20060))
                for k, dst in enumerate(moves_out):
                    slot = k % 32
                    reqs.append(m.isend(sbuf + slot * nbytes, face_elems,
                                        dt.DOUBLE, dest=dst, tag=20060))
                yield from m.waitall(reqs)
                yield from m.barrier()
                epoch += 1
        m.free(sbuf)
        m.free(rbuf)

    return Workload("flash_cellular", nprocs, program,
                    dict(iters=iters, refine_every=refine_every))
