"""Workload scaffolding shared by all benchmark programs.

A *workload* is a factory returning a rank program (a generator function
taking the :class:`repro.mpisim.RankAPI`).  Factories are registered so
the benchmark harness can enumerate them by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..mpisim import NetworkModel, SimMPI
from ..mpisim.hooks import TracerHooks

Program = Callable


@dataclass
class Workload:
    """A runnable configuration: program + process count + metadata."""

    name: str
    nprocs: int
    program: Program
    params: dict = field(default_factory=dict)

    def run(self, *, seed: int = 0, tracer: Optional[TracerHooks] = None,
            noise: float = 0.05, net: Optional[NetworkModel] = None,
            node_size: int = 16, events=None, faults=None):
        """Execute on a fresh simulator; returns the RunResult.

        ``faults`` (a FaultPlan or armed FaultInjector) turns on
        scheduler-level fault injection — see :mod:`repro.resilience`.
        """
        sim = SimMPI(self.nprocs, seed=seed, tracer=tracer, noise=noise,
                     net=net, node_size=node_size, events=events,
                     faults=faults)
        return sim.run(self.program)


#: global registry: name -> factory(nprocs, **params) -> Workload
REGISTRY: dict[str, Callable[..., Workload]] = {}


def register(name: str):
    def deco(factory):
        REGISTRY[name] = factory
        factory.workload_name = name
        return factory
    return deco


def make(name: str, nprocs: int, **params) -> Workload:
    try:
        factory = REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"known: {sorted(REGISTRY)}") from None
    return factory(nprocs, **params)


def grid_partition(total: int, parts: int, index: int) -> int:
    """Cells owned by partition *index* when *total* cells are split into
    *parts* near-equal chunks (the first ``total % parts`` get one extra).
    This uneven split is what makes per-rank message sizes differ in the
    BT/SP-style multi-partition codes."""
    base, rem = divmod(total, parts)
    return base + (1 if index < rem else 0)
