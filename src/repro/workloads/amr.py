"""PARAMESH-style adaptive mesh refinement substrate (§4.3, Cellular).

FLASH's Cellular problem uses PARAMESH: the compute domain is a hierarchy
of sub-grid blocks held in an octree, sorted in Morton order to compute a
load-balanced contiguous partition; at each refinement phase new child
blocks appear and blocks migrate between processes to rebalance.  The
communication pattern (who exchanges guard cells with whom, which blocks
move where) changes at every refinement — which is exactly why the
Cellular trace keeps growing with iterations (Fig 6e).

This module implements that substrate: a Morton-ordered block octree
with deterministic, seed-driven refinement and contiguous partitioning.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator


def _interleave3(x: int, y: int, z: int, level: int) -> int:
    """Morton key: bit-interleave three *level*-bit coordinates."""
    key = 0
    for b in range(level):
        key |= ((x >> b) & 1) << (3 * b + 2)
        key |= ((y >> b) & 1) << (3 * b + 1)
        key |= ((z >> b) & 1) << (3 * b)
    return key


@dataclass(frozen=True)
class Block:
    """One leaf block of the octree."""

    level: int
    x: int
    y: int
    z: int

    @property
    def morton(self) -> tuple[int, int]:
        # sort by (key at own depth scaled to a common depth, level):
        # children sort adjacent to (and after) their parent's position
        return (_interleave3(self.x, self.y, self.z, self.level)
                << (3 * (MortonTree.MAX_LEVEL - self.level)), self.level)

    def children(self) -> list["Block"]:
        lx, ly, lz = self.x * 2, self.y * 2, self.z * 2
        return [Block(self.level + 1, lx + dx, ly + dy, lz + dz)
                for dx in (0, 1) for dy in (0, 1) for dz in (0, 1)]

    def face_neighbors(self) -> Iterator[tuple[int, int, int, int]]:
        """Same-level face-neighbour coordinates (level, x, y, z),
        periodic within the level's extent."""
        n = 1 << self.level
        for d, (dx, dy, dz) in enumerate(((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                                          (0, -1, 0), (0, 0, 1), (0, 0, -1))):
            yield (self.level, (self.x + dx) % n, (self.y + dy) % n,
                   (self.z + dz) % n)


class MortonTree:
    """A block octree with Morton-ordered balanced partitioning."""

    MAX_LEVEL = 10

    def __init__(self, base_level: int = 1, seed: int = 0):
        self.seed = seed
        n = 1 << base_level
        self._leaves: set[Block] = {
            Block(base_level, x, y, z)
            for x in range(n) for y in range(n) for z in range(n)}
        self.refinements = 0

    # -- queries ---------------------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return len(self._leaves)

    def leaves_sorted(self) -> list[Block]:
        return sorted(self._leaves, key=lambda b: b.morton)

    def partition(self, nprocs: int) -> dict[Block, int]:
        """Contiguous Morton-order split into near-equal chunks."""
        blocks = self.leaves_sorted()
        owner: dict[Block, int] = {}
        n = len(blocks)
        for i, b in enumerate(blocks):
            owner[b] = min(i * nprocs // max(n, 1), nprocs - 1)
        return owner

    def block_neighbors(self, block: Block) -> list[Block]:
        """Leaf blocks adjacent to *block* (same, coarser, or finer)."""
        out = []
        leaves = self._leaves
        for lev, x, y, z in block.face_neighbors():
            cand = Block(lev, x, y, z)
            if cand in leaves:
                out.append(cand)
                continue
            # coarser neighbour?
            cl, cx, cy, cz = lev, x, y, z
            found = False
            while cl > 0:
                cl, cx, cy, cz = cl - 1, cx // 2, cy // 2, cz // 2
                coarse = Block(cl, cx, cy, cz)
                if coarse in leaves:
                    out.append(coarse)
                    found = True
                    break
            if found:
                continue
            # finer neighbours: the face-adjacent children one level down
            for child in cand.children():
                if child in leaves:
                    out.append(child)
        return out

    # -- refinement ------------------------------------------------------------------------

    def refine_step(self, fraction: float = 0.12,
                    max_refine: int = 200) -> int:
        """One refinement phase: a deterministic pseudo-random subset of
        leaf blocks (biased toward an expanding front, like a burning
        cellular detonation) is split into children.  The count per phase
        is capped at *max_refine* — a detonation front is a surface, so
        the number of blocks flagged per step is bounded, not
        proportional to the (growing) volume.  Returns the number of
        blocks refined."""
        self.refinements += 1
        chosen = []
        for b in self.leaves_sorted():
            if b.level >= self.MAX_LEVEL:
                continue
            h = hashlib.blake2b(
                f"{self.seed}:{self.refinements}:{b.level}:{b.x}:{b.y}:{b.z}"
                .encode(), digest_size=4)
            u = int.from_bytes(h.digest(), "little") / 2 ** 32
            # the expanding-front bias: low-coordinate blocks refine first,
            # later phases reach deeper into the domain
            front = (b.x + b.y + b.z) / (3 * (1 << b.level))
            if u < fraction and front < 0.25 + 0.15 * self.refinements:
                chosen.append(b)
                if len(chosen) >= max_refine:
                    break
        for b in chosen:
            self._leaves.discard(b)
            self._leaves.update(b.children())
        return len(chosen)

    def check_invariants(self) -> None:
        """No leaf may be an ancestor of another leaf (tests)."""
        for b in self._leaves:
            lev, x, y, z = b.level, b.x, b.y, b.z
            while lev > 0:
                lev, x, y, z = lev - 1, x // 2, y // 2, z // 2
                assert Block(lev, x, y, z) not in self._leaves, \
                    f"leaf {b} has leaf ancestor at level {lev}"
