"""NAS Parallel Benchmark communication skeletons (Fig 5, Fig 10).

Each skeleton reproduces the published communication structure of the
class-C benchmark — the properties that determine how its trace
compresses:

* **IS** — bucket sort: an ``MPI_Alltoall`` of bucket counts followed by
  an ``MPI_Alltoallv`` whose count arrays differ per rank (key
  distribution) and whose length grows with P.  This is the worst case
  for whole-trace replication (ScalaTrace superlinear, Fig 5) while
  Pilgrim pays one CST entry per rank.
* **MG** — V-cycles: ghost exchange at every grid level with stride-2^k
  neighbours; at coarse levels only ranks aligned to the stride stay
  active, so the number of activity classes grows with log P.
* **CG** — row-wise reduce ladders with XOR partners (distance ±2^k
  depending on the rank's bit pattern): few signatures, but per-rank
  grammars follow the rank's bit pattern.
* **LU** — SSOR wavefront: blocking north/west receives then south/east
  sends, perfectly rank-relative — the one benchmark where ScalaTrace
  also stays flat (Fig 5, LU panel).
* **BT/SP** — ADI sweeps on a √P×√P grid with *uneven* cell sizes (the
  multi-partition split of a grid that does not divide evenly), so
  message counts depend on the rank's row/column.

Iteration counts default to paper-shaped but laptop-scaled values.
"""

from __future__ import annotations

import hashlib
import math

from ..mpisim import constants as C
from ..mpisim import datatypes as dt
from ..mpisim import ops
from ..mpisim.errors import InvalidArgumentError
from ..mpisim.topology import dims_create
from .base import Workload, grid_partition, register


def _hash_u32(*vals: int) -> int:
    h = hashlib.blake2b(repr(vals).encode(), digest_size=4)
    return int.from_bytes(h.digest(), "little")


# ---------------------------------------------------------------------------- IS

@register("npb_is")
def npb_is(nprocs: int, *, iters: int = 10, total_keys: int = 1 << 20
           ) -> Workload:
    """Integer Sort: bucketed key exchange."""

    def program(m):
        me = m.comm_rank()
        n = m.comm_size()
        keys_per = total_keys // n
        kbuf = m.malloc(keys_per * 4)
        rbuf = m.malloc(2 * keys_per * 4)
        cbuf = m.malloc(n * 4)
        # per-rank bucket distribution: near-uniform with deterministic
        # per-rank jitter, stable across iterations (same keys each round)
        counts = []
        for dst in range(n):
            jitter = _hash_u32(me, dst, n) % max(keys_per // (8 * n), 1) \
                if n > 1 else 0
            counts.append(keys_per // n + jitter)
        displs = [0] * n
        for i in range(1, n):
            displs[i] = displs[i - 1] + counts[i - 1]
        for _ in range(iters):
            m.compute(5e-9 * keys_per)
            # exchange bucket sizes, then the keys
            yield from m.alltoall(cbuf, 1, dt.INT, cbuf, 1, dt.INT)
            yield from m.alltoallv(kbuf, counts, displs, dt.INT,
                                   rbuf, counts, displs, dt.INT)
            yield from m.allreduce(cbuf, cbuf, 1, dt.INT, ops.SUM)
        # full verification
        yield from m.allreduce(cbuf, cbuf, 1, dt.INT, ops.SUM)

    return Workload("npb_is", nprocs, program, dict(iters=iters))


# ---------------------------------------------------------------------------- MG

@register("npb_mg")
def npb_mg(nprocs: int, *, iters: int = 8, base_elems: int = 4096
           ) -> Workload:
    """MultiGrid V-cycles with per-level ghost exchange."""
    px, py, pz = dims_create(nprocs, 3)
    nlevels = max(2, int(math.log2(max(nprocs, 2))) + 2)

    def program(m):
        me = m.comm_rank()
        cz = me % pz
        cy = (me // pz) % py
        cx = me // (py * pz)
        coords = (cx, cy, cz)
        pdims = (px, py, pz)
        nbytes = base_elems * dt.DOUBLE.size
        sbuf = m.malloc(6 * nbytes)
        rbuf = m.malloc(6 * nbytes)

        def level_exchange(lev):
            stride = 1 << lev
            # only ranks aligned to the level stride stay active
            if any(c % stride for c in coords):
                return
            elems = max(base_elems >> lev, 8)
            reqs = []
            k = 0
            for d in range(3):
                for s in (-stride, +stride):
                    c = list(coords)
                    c[d] = (c[d] + s) % pdims[d] if pdims[d] > 1 else c[d]
                    nb = (c[0] * py + c[1]) * pz + c[2]
                    if nb == me:
                        nb = C.PROC_NULL
                    reqs.append(m.irecv(rbuf + k * nbytes, elems, dt.DOUBLE,
                                        source=nb, tag=20100 + lev))
                    reqs.append(m.isend(sbuf + k * nbytes, elems, dt.DOUBLE,
                                        dest=nb, tag=20100 + lev))
                    k += 1
            return reqs

        max_active = max(lvl for lvl in range(nlevels)
                         if (1 << lvl) <= max(px, py, pz)) + 1
        for _ in range(iters):
            # down-sweep then up-sweep of the V-cycle
            for lev in list(range(max_active)) + \
                    list(range(max_active - 2, -1, -1)):
                m.compute(1e-6 * (base_elems >> min(lev, 10)))
                reqs = level_exchange(lev)
                if reqs:
                    yield from m.waitall(reqs)
            yield from m.allreduce(sbuf, rbuf, 1, dt.DOUBLE, ops.SUM)
        m.free(sbuf)
        m.free(rbuf)

    return Workload("npb_mg", nprocs, program, dict(iters=iters))


# ---------------------------------------------------------------------------- CG

@register("npb_cg")
def npb_cg(nprocs: int, *, iters: int = 15, row_elems: int = 2048
           ) -> Workload:
    """Conjugate Gradient: XOR-partner reduce ladders per row."""
    if nprocs & (nprocs - 1):
        raise InvalidArgumentError("npb_cg needs a power-of-two rank count")
    # NPB CG: num_proc_cols >= num_proc_rows, both powers of two
    log_p = int(math.log2(nprocs))
    npcols = 1 << ((log_p + 1) // 2)
    nprows = nprocs // npcols

    def program(m):
        me = m.comm_rank()
        buf = m.malloc(row_elems * 8)
        rbuf = m.malloc(row_elems * 8)
        for _ in range(iters):
            m.compute(2e-6 * row_elems)
            # reduce ladder across the row: partner = me XOR 2^k (in cols)
            for k in range(int(math.log2(npcols))):
                partner = me ^ (1 << k)
                rr = m.irecv(rbuf, row_elems, dt.DOUBLE, source=partner,
                             tag=20010 + k)
                yield from m.send(buf, row_elems, dt.DOUBLE, dest=partner,
                                  tag=20010 + k)
                yield from m.wait(rr)
            # two inner products per iteration
            yield from m.allreduce(buf, rbuf, 1, dt.DOUBLE, ops.SUM)
            yield from m.allreduce(buf, rbuf, 1, dt.DOUBLE, ops.SUM)
        m.free(buf)
        m.free(rbuf)

    return Workload("npb_cg", nprocs, program,
                    dict(iters=iters, nprows=nprows, npcols=npcols))


# ---------------------------------------------------------------------------- LU

@register("npb_lu")
def npb_lu(nprocs: int, *, iters: int = 12, face_elems: int = 1024
           ) -> Workload:
    """LU: SSOR wavefront pipelining on a 2D grid."""
    px, py = dims_create(nprocs, 2)

    def program(m):
        me = m.comm_rank()
        row, col = divmod(me, py)
        north = me - py if row > 0 else C.PROC_NULL
        south = me + py if row < px - 1 else C.PROC_NULL
        west = me - 1 if col > 0 else C.PROC_NULL
        east = me + 1 if col < py - 1 else C.PROC_NULL
        buf = m.malloc(4 * face_elems * 8)

        def sweep(frm_a, frm_b, to_a, to_b, tag):
            # blocking receives from the upstream wavefront, compute,
            # then sends downstream — LU's signature pipelined pattern
            if frm_a != C.PROC_NULL:
                yield from m.recv(buf, face_elems, dt.DOUBLE, source=frm_a,
                                  tag=tag)
            if frm_b != C.PROC_NULL:
                yield from m.recv(buf, face_elems, dt.DOUBLE, source=frm_b,
                                  tag=tag)
            m.compute(1e-6 * face_elems)
            if to_a != C.PROC_NULL:
                yield from m.send(buf, face_elems, dt.DOUBLE, dest=to_a,
                                  tag=tag)
            if to_b != C.PROC_NULL:
                yield from m.send(buf, face_elems, dt.DOUBLE, dest=to_b,
                                  tag=tag)

        for it in range(iters):
            yield from sweep(north, west, south, east, 20021)   # lower
            yield from sweep(south, east, north, west, 20022)   # upper
            if it % 5 == 0:
                yield from m.allreduce(buf, buf, 5, dt.DOUBLE, ops.SUM)
        yield from m.allreduce(buf, buf, 5, dt.DOUBLE, ops.MAX)
        m.free(buf)

    return Workload("npb_lu", nprocs, program, dict(iters=iters))


# ---------------------------------------------------------------------------- BT / SP

def _adi_program(nprocs: int, iters: int, grid_n: int, sync_every: int):
    p = math.isqrt(nprocs)
    if p * p != nprocs:
        raise InvalidArgumentError("BT/SP need a square number of ranks")

    def cell_dims(row: int, col: int) -> tuple[int, int, int]:
        # uneven multi-partition cell sizes: message counts depend on the
        # rank's position when grid_n % p != 0
        return (grid_partition(grid_n, p, row),
                grid_partition(grid_n, p, col),
                max(grid_n // p, 1))

    def program(m):
        me = m.comm_rank()
        row, col = divmod(me, p)
        nx, ny, nz = cell_dims(row, col)
        buf = m.malloc(grid_n * grid_n * 8)

        def face_elems(r: int, c: int, d: int) -> int:
            fx, fy, fz = cell_dims(r, c)
            return max((fy * fz, fx * fz, fx * fy)[d], 1)

        def face_exchange(dr, dc, d, tag):
            succ = ((row + dr) % p) * p + (col + dc) % p
            pred_r, pred_c = (row - dr) % p, (col - dc) % p
            pred = pred_r * p + pred_c
            # the incoming face is sized by the *sender's* cell dims
            reqs = [m.irecv(buf, face_elems(pred_r, pred_c, d), dt.DOUBLE,
                            source=pred, tag=tag),
                    m.isend(buf, face_elems(row, col, d), dt.DOUBLE,
                            dest=succ, tag=tag)]
            return reqs

        for it in range(iters):
            # x, y, z solve sweeps — each a ring exchange with sizes
            # depending on the orthogonal cell dimensions
            for d, (dr, dc) in enumerate(((0, 1), (1, 0), (1, 1))):
                m.compute(2e-7 * face_elems(row, col, d))
                reqs = face_exchange(dr, dc, d, 20030 + d)
                yield from m.waitall(reqs)
            if it % sync_every == 0:
                yield from m.allreduce(buf, buf, 5, dt.DOUBLE, ops.SUM)
        yield from m.allreduce(buf, buf, 5, dt.DOUBLE, ops.MAX)
        m.free(buf)

    return program


@register("npb_bt")
def npb_bt(nprocs: int, *, iters: int = 12, grid_n: int = 162) -> Workload:
    return Workload("npb_bt", nprocs,
                    _adi_program(nprocs, iters, grid_n, sync_every=5),
                    dict(iters=iters, grid_n=grid_n))


@register("npb_sp")
def npb_sp(nprocs: int, *, iters: int = 16, grid_n: int = 162) -> Workload:
    return Workload("npb_sp", nprocs,
                    _adi_program(nprocs, iters, grid_n, sync_every=1),
                    dict(iters=iters, grid_n=grid_n))


NPB_ALL = ("npb_is", "npb_mg", "npb_cg", "npb_lu", "npb_bt", "npb_sp")
