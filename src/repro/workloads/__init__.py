"""``repro.workloads`` — the evaluation codes (Table 2), as communication
skeletons over the simulated MPI runtime.

* benchmarks: 2D/3D stencils (:mod:`.stencil`), OSU micro-benchmarks
  (:mod:`.osu`)
* mini apps: NAS Parallel Benchmarks IS/MG/CG/LU/BT/SP (:mod:`.npb`)
* production apps: FLASH Sedov/Cellular/StirTurb (:mod:`.flash`, with the
  PARAMESH-style AMR substrate in :mod:`.amr`) and MILC su3_rmd
  (:mod:`.milc`)

Use :func:`repro.workloads.make` to instantiate by name::

    wl = make("npb_mg", nprocs=64, iters=8)
    wl.run(seed=1, tracer=PilgrimTracer())
"""

from . import flash, milc, npb, osu, stencil, sweep  # noqa: F401  (register all)
from .amr import Block, MortonTree
from .base import REGISTRY, Workload, grid_partition, make

__all__ = ["Block", "MortonTree", "REGISTRY", "Workload", "grid_partition",
           "make"]
