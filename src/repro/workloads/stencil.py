"""The paper's §4.1 stencil benchmarks.

* 2D 5-point stencil with **non-periodic** boundaries: on an M×N process
  mesh (row-major, as in the paper: process *i* talks to *i±1*
  horizontally and *i±N* vertically), boundary processes exchange with
  ``MPI_PROC_NULL``.  There are 9 communication-pattern classes (4
  corners, 4 edges, interior), all present from a 3×3 mesh on — so the
  compressed trace must stop growing beyond 9 processes.
* 3D 7-point stencil with **periodic** boundaries: at most 27 classes,
  trace size flat beyond 27 processes.  (With full periodicity every
  interior-style rank is identical; the distinct classes come from
  self-wrapping when a dimension has <3 processes.)

Both use ``MPI_Isend``/``MPI_Irecv``/``MPI_Waitall`` exactly as §4.1
describes.
"""

from __future__ import annotations

from ..mpisim import constants as C
from ..mpisim import datatypes as dt
from ..mpisim.topology import dims_create
from .base import Workload, register


def _neighbor_2d(me_x: int, me_y: int, dx: int, dy: int, px: int, py: int,
                 periodic: bool) -> int:
    x, y = me_x + dx, me_y + dy
    if periodic:
        x %= px
        y %= py
    elif not (0 <= x < px and 0 <= y < py):
        return C.PROC_NULL
    return x * py + y


@register("stencil2d")
def stencil2d(nprocs: int, *, iters: int = 50, msg_elems: int = 512,
              periodic: bool = False, px: int = 0, py: int = 0) -> Workload:
    """2D 5-point stencil (non-periodic by default, as in the paper)."""
    if not (px and py):
        px, py = dims_create(nprocs, 2)
    assert px * py == nprocs

    def program(m):
        me = m.comm_rank()
        m.comm_size()  # traced call; the value itself is unused
        mx, my = divmod(me, py)
        nbrs = [
            _neighbor_2d(mx, my, 0, -1, px, py, periodic),   # west  (i-1)
            _neighbor_2d(mx, my, 0, +1, px, py, periodic),   # east  (i+1)
            _neighbor_2d(mx, my, -1, 0, px, py, periodic),   # north (i-N)
            _neighbor_2d(mx, my, +1, 0, px, py, periodic),   # south (i+N)
        ]
        nbytes = msg_elems * dt.DOUBLE.size
        sbuf = m.malloc(4 * nbytes)
        rbuf = m.malloc(4 * nbytes)
        for _ in range(iters):
            m.compute(2e-6 * msg_elems)
            reqs = []
            for k, nb in enumerate(nbrs):
                # directions pair up as (0,1) and (2,3): the message we
                # receive from neighbour k travels in direction k^1
                reqs.append(m.irecv(rbuf + k * nbytes, msg_elems, dt.DOUBLE,
                                    source=nb, tag=20000 + (k ^ 1)))
            for k, nb in enumerate(nbrs):
                reqs.append(m.isend(sbuf + k * nbytes, msg_elems, dt.DOUBLE,
                                    dest=nb, tag=20000 + k))
            yield from m.waitall(reqs)
        m.free(sbuf)
        m.free(rbuf)

    return Workload("stencil2d", nprocs, program,
                    dict(iters=iters, msg_elems=msg_elems, px=px, py=py,
                         periodic=periodic))


@register("stencil2d_rma")
def stencil2d_rma(nprocs: int, *, iters: int = 50, msg_elems: int = 512,
                  px: int = 0, py: int = 0) -> Workload:
    """The 2D stencil re-expressed with one-sided halo exchange: each
    rank Puts its faces into its neighbours' windows between fences.
    Same 9 pattern classes as the p2p version — relative target ranks
    make the RMA calls rank-independent too."""
    if not (px and py):
        px, py = dims_create(nprocs, 2)
    assert px * py == nprocs

    def program(m):
        me = m.comm_rank()
        mx, my = divmod(me, py)
        nbrs = [
            _neighbor_2d(mx, my, 0, -1, px, py, False),
            _neighbor_2d(mx, my, 0, +1, px, py, False),
            _neighbor_2d(mx, my, -1, 0, px, py, False),
            _neighbor_2d(mx, my, +1, 0, px, py, False),
        ]
        nbytes = msg_elems * dt.DOUBLE.size
        base, win = yield from m.win_allocate(4 * nbytes, dt.DOUBLE.size)
        for _ in range(iters):
            m.compute(2e-6 * msg_elems)
            yield from m.win_fence(win)
            for k, nb in enumerate(nbrs):
                if nb != C.PROC_NULL:
                    m.put(base + k * nbytes, msg_elems, dt.DOUBLE, nb,
                          (k ^ 1) * msg_elems, msg_elems, dt.DOUBLE, win)
            yield from m.win_fence(win)
        yield from m.win_free(win)

    return Workload("stencil2d_rma", nprocs, program,
                    dict(iters=iters, msg_elems=msg_elems, px=px, py=py))


@register("stencil3d")
def stencil3d(nprocs: int, *, iters: int = 50, msg_elems: int = 512,
              periodic: bool = True, dims: tuple = ()) -> Workload:
    """3D 7-point stencil (periodic by default, as in the paper)."""
    if not dims:
        dims = dims_create(nprocs, 3)
    px, py, pz = dims
    assert px * py * pz == nprocs

    def neighbor(cx, cy, cz, d, s):
        c = [cx, cy, cz]
        c[d] += s
        if periodic:
            c[d] %= dims[d]
        elif not 0 <= c[d] < dims[d]:
            return C.PROC_NULL
        return (c[0] * py + c[1]) * pz + c[2]

    def program(m):
        me = m.comm_rank()
        cz = me % pz
        cy = (me // pz) % py
        cx = me // (py * pz)
        nbrs = [neighbor(cx, cy, cz, d, s)
                for d in range(3) for s in (-1, +1)]
        nbytes = msg_elems * dt.DOUBLE.size
        sbuf = m.malloc(6 * nbytes)
        rbuf = m.malloc(6 * nbytes)
        for _ in range(iters):
            m.compute(3e-6 * msg_elems)
            reqs = []
            for k, nb in enumerate(nbrs):
                reqs.append(m.irecv(rbuf + k * nbytes, msg_elems, dt.DOUBLE,
                                    source=nb, tag=20000 + (k ^ 1)))
            for k, nb in enumerate(nbrs):
                reqs.append(m.isend(sbuf + k * nbytes, msg_elems, dt.DOUBLE,
                                    dest=nb, tag=20000 + k))
            yield from m.waitall(reqs)
        m.free(sbuf)
        m.free(rbuf)

    return Workload("stencil3d", nprocs, program,
                    dict(iters=iters, msg_elems=msg_elems, dims=dims,
                         periodic=periodic))
