"""Master-worker parameter sweep (``mw_sweep``).

A self-scheduling task farm: rank 0 hands tasks to whichever worker
reports back first (``MPI_Recv`` from ``MPI_ANY_SOURCE``), workers loop
on task/stop messages distinguished by tag.  This is the one stock
workload whose *communication structure* depends on message arrival
order — exactly the nondeterminism the what-if replay engine
(:mod:`repro.replay.divergence`) exists to expose: delay one worker with
a scheduler fault and the master's wildcard matches re-order, which a
relaxed replay reports as a ``status.source`` divergence at the first
affected receive.
"""

from __future__ import annotations

from ..mpisim import constants as C
from ..mpisim import datatypes as dt
from ..mpisim import ops
from ..mpisim.errors import InvalidArgumentError
from .base import Workload, register

#: message tags: task handout, result return, shutdown
TAG_TASK = 31001
TAG_RESULT = 31002
TAG_STOP = 31003


@register("mw_sweep")
def mw_sweep(nprocs: int, *, tasks: int = 0, work: float = 2e-6) -> Workload:
    """Self-scheduling farm: ``tasks`` work items (default: three waves
    per worker) dealt first-come-first-served; per-task compute cost
    scales with worker rank so finish order is interleaved."""
    if nprocs < 2:
        raise InvalidArgumentError("mw_sweep needs a master and at least "
                                   "one worker (nprocs >= 2)")
    ntasks = tasks if tasks > 0 else 3 * (nprocs - 1)

    def program(m):
        me = m.comm_rank()
        nw = m.comm_size() - 1
        buf = m.malloc(64)
        stats = m.malloc(16)
        yield from m.barrier()
        if me == 0:
            handed = 0
            for w in range(1, nw + 1):      # seed one task per worker
                if handed < ntasks:
                    yield from m.send(buf, 8, dt.BYTE, dest=w, tag=TAG_TASK)
                    handed += 1
                else:
                    yield from m.send(buf, 1, dt.BYTE, dest=w, tag=TAG_STOP)
            outstanding = min(ntasks, nw)
            while outstanding:
                _, st = yield from m.recv(buf, 8, dt.BYTE,
                                          source=C.ANY_SOURCE,
                                          tag=TAG_RESULT)
                outstanding -= 1
                if handed < ntasks:         # next task to whoever finished
                    yield from m.send(buf, 8, dt.BYTE,
                                      dest=st.MPI_SOURCE, tag=TAG_TASK)
                    handed += 1
                    outstanding += 1
                else:
                    yield from m.send(buf, 1, dt.BYTE,
                                      dest=st.MPI_SOURCE, tag=TAG_STOP)
        else:
            while True:
                _, st = yield from m.recv(buf, 8, dt.BYTE, source=0,
                                          tag=C.ANY_TAG)
                if st.MPI_TAG == TAG_STOP:
                    break
                m.compute(work * (1 + me))
                yield from m.send(buf, 8, dt.BYTE, dest=0, tag=TAG_RESULT)
        yield from m.allreduce(buf, stats, 2, dt.DOUBLE, ops.SUM)
        m.free(stats)
        m.free(buf)
        yield from m.barrier()

    return Workload("mw_sweep", nprocs, program,
                    dict(tasks=ntasks, work=work))
