"""OSU Micro-Benchmark proxies (§4.1).

The paper ran all OSU micro-benchmarks (except the multi-threaded
latency test, which Pilgrim does not support) and found every trace
compresses to a few kilobytes.  Each proxy below follows the published
structure of the corresponding OSU program: a message-size sweep with a
fixed iteration count per size, warm-up rounds, and a final result
reduction/print — the exact call mix a tracer sees.
"""

from __future__ import annotations

from ..mpisim import datatypes as dt
from ..mpisim import ops
from ..mpisim.errors import InvalidArgumentError
from .base import Workload, register

#: message sizes swept (bytes) — OSU's powers of two, scaled down
SIZES = tuple(2 ** k for k in range(0, 17, 2))


def _check_pairs(nprocs: int) -> None:
    if nprocs < 2 or nprocs % 2:
        raise InvalidArgumentError(
            "OSU point-to-point benchmarks need an even number of ranks")


@register("osu_latency")
def osu_latency(nprocs: int, *, iters: int = 20, skip: int = 2) -> Workload:
    """Ping-pong between ranks 0 and 1 (extra ranks idle at barriers)."""

    def program(m):
        me = m.comm_rank()
        buf = m.malloc(SIZES[-1])
        for size in SIZES:
            yield from m.barrier()
            for it in range(iters + skip):
                if me == 0:
                    yield from m.send(buf, size, dt.BYTE, dest=1, tag=20001)
                    _ = yield from m.recv(buf, size, dt.BYTE, source=1, tag=20001)
                elif me == 1:
                    _ = yield from m.recv(buf, size, dt.BYTE, source=0, tag=20001)
                    yield from m.send(buf, size, dt.BYTE, dest=0, tag=20001)
                m.compute(1e-7)
        m.free(buf)
        yield from m.barrier()

    return Workload("osu_latency", nprocs, program, dict(iters=iters))


@register("osu_bw")
def osu_bw(nprocs: int, *, iters: int = 10, window: int = 16) -> Workload:
    """Bandwidth: rank 0 streams a window of isends, rank 1 irecvs,
    handshake reply per window."""

    def program(m):
        me = m.comm_rank()
        buf = m.malloc(SIZES[-1])
        ack = m.malloc(8)
        for size in SIZES:
            yield from m.barrier()
            for _ in range(iters):
                if me == 0:
                    reqs = [m.isend(buf, size, dt.BYTE, dest=1, tag=20002)
                            for _ in range(window)]
                    yield from m.waitall(reqs)
                    _ = yield from m.recv(ack, 4, dt.BYTE, source=1, tag=20003)
                elif me == 1:
                    reqs = [m.irecv(buf, size, dt.BYTE, source=0, tag=20002)
                            for _ in range(window)]
                    yield from m.waitall(reqs)
                    yield from m.send(ack, 4, dt.BYTE, dest=0, tag=20003)
        m.free(ack)
        m.free(buf)
        yield from m.barrier()

    return Workload("osu_bw", nprocs, program, dict(iters=iters,
                                                    window=window))


@register("osu_bibw")
def osu_bibw(nprocs: int, *, iters: int = 10, window: int = 8) -> Workload:
    """Bidirectional bandwidth: both ranks stream windows simultaneously."""

    def program(m):
        me = m.comm_rank()
        buf = m.malloc(SIZES[-1])
        for size in SIZES:
            yield from m.barrier()
            for _ in range(iters):
                if me in (0, 1):
                    peer = 1 - me
                    reqs = [m.irecv(buf, size, dt.BYTE, source=peer, tag=20004)
                            for _ in range(window)]
                    reqs += [m.isend(buf, size, dt.BYTE, dest=peer, tag=20004)
                             for _ in range(window)]
                    yield from m.waitall(reqs)
        m.free(buf)
        yield from m.barrier()

    return Workload("osu_bibw", nprocs, program, dict(iters=iters,
                                                      window=window))


@register("osu_multi_lat")
def osu_multi_lat(nprocs: int, *, iters: int = 10) -> Workload:
    """Multi-pair latency: rank i of the low half pairs with i + P/2."""
    _check_pairs(nprocs)

    def program(m):
        me = m.comm_rank()
        n = m.comm_size()
        half = n // 2
        buf = m.malloc(SIZES[-1])
        for size in SIZES:
            yield from m.barrier()
            for _ in range(iters):
                if me < half:
                    yield from m.send(buf, size, dt.BYTE, dest=me + half,
                                      tag=20005)
                    _ = yield from m.recv(buf, size, dt.BYTE,
                                          source=me + half, tag=20005)
                else:
                    _ = yield from m.recv(buf, size, dt.BYTE,
                                          source=me - half, tag=20005)
                    yield from m.send(buf, size, dt.BYTE, dest=me - half,
                                      tag=20005)
        m.free(buf)
        yield from m.barrier()

    return Workload("osu_multi_lat", nprocs, program, dict(iters=iters))


@register("osu_put_latency")
def osu_put_latency(nprocs: int, *, iters: int = 10) -> Workload:
    """One-sided put latency (osu_put_latency): fence-bounded epochs."""
    _check_pairs(nprocs)

    def program(m):
        me = m.comm_rank()
        base, win = yield from m.win_allocate(SIZES[-1], 1)
        for size in SIZES:
            for _ in range(iters):
                yield from m.win_fence(win)
                if me == 0:
                    m.put(base, size, dt.BYTE, 1, 0, size, dt.BYTE, win)
                yield from m.win_fence(win)
        yield from m.win_free(win)

    return Workload("osu_put_latency", nprocs, program, dict(iters=iters))


@register("osu_get_latency")
def osu_get_latency(nprocs: int, *, iters: int = 10) -> Workload:
    """One-sided get latency with passive-target lock/unlock epochs."""
    _check_pairs(nprocs)
    from ..mpisim.win import LOCK_SHARED

    def program(m):
        me = m.comm_rank()
        base, win = yield from m.win_allocate(SIZES[-1], 1)
        yield from m.barrier()
        for size in SIZES:
            for _ in range(iters):
                if me == 0:
                    yield from m.win_lock(LOCK_SHARED, 1, win)
                    m.get(base, size, dt.BYTE, 1, 0, size, dt.BYTE, win)
                    m.win_unlock(1, win)
            yield from m.barrier()
        yield from m.win_free(win)

    return Workload("osu_get_latency", nprocs, program, dict(iters=iters))


def _collective_proxy(name: str, coll: str):
    @register(name)
    def factory(nprocs: int, *, iters: int = 10) -> Workload:
        def program(m):
            buf = m.malloc(2 * SIZES[-1])
            rbuf = m.malloc(2 * SIZES[-1])
            for size in SIZES:
                yield from m.barrier()
                for _ in range(iters):
                    count = max(size // dt.DOUBLE.size, 1)
                    if coll == "allreduce":
                        yield from m.allreduce(buf, rbuf, count, dt.DOUBLE,
                                               ops.SUM)
                    elif coll == "bcast":
                        yield from m.bcast(buf, count, dt.DOUBLE, root=0)
                    elif coll == "alltoall":
                        yield from m.alltoall(buf, 1, dt.DOUBLE, rbuf, 1,
                                              dt.DOUBLE)
                    elif coll == "allgather":
                        yield from m.allgather(buf, 1, dt.DOUBLE, rbuf, 1,
                                               dt.DOUBLE)
                    elif coll == "reduce":
                        yield from m.reduce(buf, rbuf, count, dt.DOUBLE,
                                            ops.SUM, root=0)
                    elif coll == "barrier":
                        yield from m.barrier()
                    m.compute(1e-7)
            m.free(rbuf)
            m.free(buf)
            yield from m.barrier()

        return Workload(name, nprocs, program, dict(iters=iters))

    factory.__name__ = name
    return factory


osu_allreduce = _collective_proxy("osu_allreduce", "allreduce")
osu_bcast = _collective_proxy("osu_bcast", "bcast")
osu_alltoall = _collective_proxy("osu_alltoall", "alltoall")
osu_allgather = _collective_proxy("osu_allgather", "allgather")
osu_reduce = _collective_proxy("osu_reduce", "reduce")
osu_barrier = _collective_proxy("osu_barrier", "barrier")
