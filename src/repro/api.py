"""The stable public facade: ``repro.api``.

Everything a downstream consumer does with this package goes through
a handful of verbs, re-exported from the ``repro`` top level:

=============  ========================================================
``trace``      run a registered workload under a tracer backend,
               optionally with fault injection; returns a
               :class:`TraceResult`
``decode``     parse a trace blob (or file) back to a
               :class:`~repro.core.decoder.TraceDecoder`; ``salvage=True``
               recovers what it can from damaged traces
``verify``     the differential lossless round-trip check on a workload
               (``allow_degraded=True`` verifies the survivors of a
               degraded trace and audits its salvage accounting)
``compare``    Pilgrim vs the ScalaTrace baseline on one configuration
               (an :class:`~repro.analysis.runner.ExperimentRow`)
``bench``      run a registered microbenchmark and return its result
               document
``serve``      start the streaming trace-ingest service on a background
               thread (a :class:`~repro.ingest.server.RunningServer`)
``push``       run a workload while streaming partial shards to an
               ingest server; the folded trace comes back byte-identical
               to the in-process run
``replay``     re-execute a trace — identical conditions (the fixed
               point) or what-if perturbations (network, faults, rank
               extrapolation) — and report first-divergence points;
               returns a :class:`~repro.replay.ReplayResult`
=============  ========================================================

The CLI (:mod:`repro.cli`), the experiment runner
(:mod:`repro.analysis.runner`) and the chaos harness
(:mod:`repro.resilience.chaos`) are all thin callers of this module;
its signatures are pinned by ``tests/test_api_surface.py`` against a
checked-in snapshot, so accidental breaks fail CI.

Tracer configuration lives in one place —
:class:`~repro.core.backends.TracerOptions`.  The historical loose
keywords (``lossy_timing=``, ``jobs=``, ``metrics=``, ...) are still
accepted for one release and folded into the options object with a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import os
import time as _time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Union

from .core.backends import TracerOptions, make_tracer
from .core.decoder import TraceDecoder
from .core.verify import VerifyReport, verify_roundtrip
from .replay.divergence import ReplayOptions, ReplayResult, run_divergence
from .resilience.faults import FaultInjector, arm
from .workloads import make as _make_workload

__all__ = [
    "ReplayOptions", "ReplayResult", "TraceResult", "TracerOptions",
    "VerifyReport",
    "bench", "compare", "decode", "push", "replay", "serve", "store",
    "trace", "verify",
]

#: TracerOptions fields that used to travel as loose keyword arguments;
#: still honored (folded into the options object) with a
#: DeprecationWarning, removed next release
_LEGACY_OPTION_KEYS = frozenset({
    "lossy_timing", "keep_raw", "jobs", "signature_cache", "metrics",
    "profile", "retry", "memory_watermark", "fault_plan",
})


def _resolve_options(options: Optional[TracerOptions], legacy: dict,
                     *, where: str) -> TracerOptions:
    """One TracerOptions from the explicit object plus any deprecated
    loose keywords (which win, matching the historical call sites)."""
    opts = options if options is not None else TracerOptions()
    if not legacy:
        return opts
    unknown = sorted(set(legacy) - _LEGACY_OPTION_KEYS)
    if unknown:
        raise TypeError(f"{where}() got unexpected keyword argument(s) "
                        f"{unknown}")
    warnings.warn(
        f"passing {sorted(legacy)} to repro.api.{where}() as loose "
        f"keywords is deprecated; set them on TracerOptions(...) and "
        f"pass options=",
        DeprecationWarning, stacklevel=3)
    return replace(opts, **legacy)


def _split_legacy(params: dict) -> dict:
    """Pop the deprecated tracer keywords out of a workload-params dict
    (the two namespaces used to share one ``**kwargs``)."""
    return {k: params.pop(k) for k in list(params)
            if k in _LEGACY_OPTION_KEYS}


@dataclass
class TraceResult:
    """What :func:`trace` returns: the run plus the tracer's result.

    The commonly wanted fields are forwarded as properties so callers
    never reach into backend-specific result objects.
    """

    workload: str
    nprocs: int
    backend: str
    seed: int
    #: the constructed tracer (still holds raw streams, CSTs, metrics)
    tracer: Any
    #: the simulator's RunResult (virtual times, scheduler steps)
    run: Any
    #: the fully resolved options the tracer was built with
    options: TracerOptions = field(default_factory=TracerOptions)
    #: the armed fault injector shared by run + pipeline (None when no
    #: plan was given)
    injector: Optional[FaultInjector] = None
    #: wall/CPU seconds of the whole run (simulate + finalize), measured
    #: by :func:`trace` and stamped into the run manifest
    wall_s: float = 0.0
    cpu_s: float = 0.0

    @property
    def result(self) -> Any:
        """The backend's result object (PilgrimResult or equivalent)."""
        return self.tracer.result

    @property
    def trace_bytes(self) -> bytes:
        return self.result.trace_bytes

    @property
    def trace_size(self) -> int:
        return self.result.trace_size

    @property
    def total_calls(self) -> int:
        return self.result.total_calls

    @property
    def degraded(self) -> bool:
        """True when the resilient pipeline had to abandon data."""
        return bool(getattr(self.result, "degraded", False))

    @property
    def salvage(self):
        """The SalvageReport accounting for lost data (None if intact)."""
        return getattr(self.result, "salvage", None)

    @property
    def fired_faults(self) -> list:
        """Human-readable log of every fault that actually fired."""
        return list(getattr(self.result, "fired_faults", []))

    @property
    def spans(self) -> list:
        """Exported span dicts for the whole run (one coherent tree,
        pooled workers spliced in); empty when the tracer ran without
        a metrics registry."""
        return list(getattr(self.result, "spans", []))

    def manifest(self, *, command: str = "trace",
                 outputs: Optional[dict] = None) -> Any:
        """Build the :class:`~repro.obs.RunManifest` describing this
        run: configuration snapshot, git version, wall/CPU seconds,
        peak RSS, resilience counters, totals, and output sizes."""
        import dataclasses

        from .obs import (RunManifest, git_describe, host_environment,
                          peak_rss_kb)
        res = self.result
        counters: dict = {}
        reg = getattr(self.tracer, "metrics", None)
        if reg is not None and getattr(reg, "enabled", False):
            counters = dict(reg.snapshot()["counters"])
        totals: dict = {"calls": self.total_calls,
                        "spans": len(self.spans)}
        for name, attr in (("signatures", "n_signatures"),
                           ("unique_grammars", "n_unique_grammars")):
            val = getattr(res, attr, None)
            if val is not None:
                totals[name] = val
        out_sizes: dict = {"trace_bytes": self.trace_size}
        try:
            out_sizes["sections"] = dict(res.section_sizes())
        except (AttributeError, TypeError):
            pass
        if outputs:
            out_sizes.update(outputs)
        salvage = self.salvage
        return RunManifest(
            command=command,
            workload=self.workload, nprocs=self.nprocs,
            backend=self.backend, seed=self.seed,
            options={f.name: getattr(self.options, f.name)
                     for f in dataclasses.fields(self.options)},
            git=git_describe(), environment=host_environment(),
            wall_s=round(self.wall_s, 6), cpu_s=round(self.cpu_s, 6),
            peak_rss_kb=peak_rss_kb(),
            counters=counters, totals=totals, outputs=out_sizes,
            degraded=self.degraded,
            salvage=salvage.summary() if salvage is not None else None,
            fired_faults=self.fired_faults)

    def write(self, path: Union[str, os.PathLike], *,
              manifest: bool = True) -> int:
        """Write the trace blob to *path*; returns the byte count.  By
        default a :class:`~repro.obs.RunManifest` sidecar lands next to
        it (``<path>.manifest.json``)."""
        blob = self.trace_bytes
        with open(path, "wb") as fh:
            fh.write(blob)
        if manifest:
            from .obs import RunManifest
            self.manifest().write(RunManifest.default_path(str(path)))
        return len(blob)

    def write_timeline(self, path: Union[str, os.PathLike]) -> int:
        """Export the run's spans as a Chrome trace-event file (load it
        in Perfetto / ``chrome://tracing``); returns the event count."""
        from .obs import write_chrome_trace
        spans = self.spans
        if not spans:
            raise ValueError(
                "no spans recorded — trace with an enabled metrics "
                "registry (TracerOptions(metrics=MetricsRegistry()))")
        return write_chrome_trace(str(path), spans,
                                  meta={"workload": self.workload,
                                        "nprocs": self.nprocs,
                                        "backend": self.backend})

    def write_spans(self, path: Union[str, os.PathLike]) -> int:
        """Dump the run's spans as JSONL (the archival form ``repro
        timeline`` and ``repro stats --spans`` read back); returns the
        line count."""
        from .obs import write_spans_jsonl
        return write_spans_jsonl(str(path), self.spans,
                                 meta={"workload": self.workload,
                                       "nprocs": self.nprocs,
                                       "backend": self.backend})

    def decode(self, *, salvage: Optional[bool] = None) -> TraceDecoder:
        """Decode this result's trace (salvage defaults to degraded-ness)."""
        return decode(self.trace_bytes,
                      salvage=self.degraded if salvage is None else salvage)


def trace(workload: str, nprocs: int = 16, *,
          backend: str = "pilgrim",
          options: Optional[TracerOptions] = None,
          seed: int = 1,
          params: Optional[dict] = None,
          noise: float = 0.05,
          events: Any = None,
          fault_plan: Any = None,
          **legacy) -> TraceResult:
    """Run registered *workload* on *nprocs* simulated ranks under the
    *backend* tracer and finalize the trace.

    ``fault_plan`` (a :class:`~repro.resilience.faults.FaultPlan`, a
    plan string for :meth:`FaultPlan.parse`, or a pre-armed injector)
    turns on deterministic fault injection: ONE injector is shared by
    the simulator's scheduler and the finalize pipeline, so a plan's
    ``times=`` budgets are global to the run.  Without a plan every
    injection point is a no-op ``None`` check.
    """
    opts = _resolve_options(options, legacy, where="trace")
    if fault_plan is not None:
        opts = replace(opts, fault_plan=fault_plan)
    if isinstance(opts.fault_plan, str):
        from .resilience.faults import FaultPlan
        opts = replace(opts, fault_plan=FaultPlan.parse(opts.fault_plan))
    injector = arm(opts.fault_plan)
    if injector is not None:
        # hand every consumer the *same* armed injector
        opts = replace(opts, fault_plan=injector)
    tracer = make_tracer(backend, opts)
    wl = _make_workload(workload, nprocs, **(params or {}))
    w0, c0 = _time.perf_counter(), _time.process_time()
    run = wl.run(seed=seed, tracer=tracer, noise=noise, events=events,
                 faults=injector)
    wall_s = _time.perf_counter() - w0
    cpu_s = _time.process_time() - c0
    return TraceResult(workload=workload, nprocs=nprocs, backend=backend,
                       seed=seed, tracer=tracer, run=run, options=opts,
                       injector=injector, wall_s=wall_s, cpu_s=cpu_s)


def decode(data: Union[bytes, str, os.PathLike], *,
           salvage: bool = False) -> TraceDecoder:
    """Parse a trace blob — or read it from a path — into a decoder.

    ``salvage=True`` switches the parser to best-effort mode: damaged
    or truncated sections are dropped instead of raising, and the
    decoder's ``.salvage`` carries a
    :class:`~repro.resilience.salvage.SalvageReport` of what was lost.
    """
    if isinstance(data, (str, os.PathLike)):
        with open(data, "rb") as fh:
            data = fh.read()
    return TraceDecoder.from_bytes(data, salvage=salvage)


def verify(workload: str, nprocs: int = 16, *, seed: int = 1,
           options: Optional[TracerOptions] = None,
           allow_degraded: bool = False,
           fault_plan: Any = None,
           **params) -> VerifyReport:
    """Trace *workload* with raw streams retained and differentially
    verify the lossless round-trip (the ``repro verify`` entry point).

    Extra keywords are workload parameters; the deprecated tracer
    keywords (``lossy_timing=``, ``jobs=``, ...) are still recognized
    and folded into *options* with a warning.  With ``fault_plan`` and
    ``allow_degraded=True`` this verifies the *survivors* of a degraded
    trace and audits the salvage report's call accounting.
    """
    legacy = _split_legacy(params)
    opts = _resolve_options(options, legacy, where="verify")
    opts = replace(opts, keep_raw=True)
    tr = trace(workload, nprocs, backend="pilgrim", options=opts,
               seed=seed, params=params, fault_plan=fault_plan)
    return verify_roundtrip(tr.tracer, allow_degraded=allow_degraded)


def compare(workload: str, nprocs: int, *, seed: int = 1,
            options: Optional[TracerOptions] = None,
            baseline: bool = True,
            params: Optional[dict] = None):
    """Pilgrim vs the ScalaTrace baseline on one (workload, nprocs):
    trace sizes, call counts, overheads.  Returns an ``ExperimentRow``."""
    from .analysis.runner import run_experiment  # heavier import, lazy
    return run_experiment(workload, nprocs, seed=seed, options=options,
                          baseline=baseline, **(params or {}))


def bench(name: str = "hotpath", *, repeats: int = 5, warmup: int = 1,
          params: Optional[dict] = None) -> dict:
    """Run one registered microbenchmark; returns its result document
    (the JSON that ``repro bench`` writes).  See
    :func:`repro.bench.available_benchmarks` for the registry."""
    from . import bench as _bench  # heavier import, lazy
    return _bench.run_benchmark(name, repeats=repeats, warmup=warmup,
                                params=params)


def store(root: Optional[str] = None, *, metrics: Any = None):
    """Open (creating on first put) the content-addressed trace store
    rooted at *root* and return a
    :class:`~repro.store.TraceStore`.

    *root* defaults to the ``REPRO_STORE`` environment variable, then
    ``.repro-store``.  The store splits every trace into its
    format-v2 sections, keeps each unique section blob once under its
    SHA-256, and records runs as manifests of hash references — so N
    runs of the same workload cost far less than N traces
    (``repro store stats`` reports the achieved ratio)."""
    from .store import DEFAULT_ROOT, TraceStore  # heavier import, lazy
    if root is None:
        root = os.environ.get("REPRO_STORE") or DEFAULT_ROOT
    return TraceStore(root, metrics=metrics)


def serve(host: str = "127.0.0.1", port: int = 0, *,
          checkpoint_dir: Optional[str] = None,
          checkpoint_every: int = 0,
          store_dir: Optional[str] = None,
          metrics: Any = None):
    """Start the streaming trace-ingest service on a background thread
    and return a :class:`~repro.ingest.server.RunningServer` (context
    manager; ``.port`` holds the bound port, ``.stop()`` shuts down).

    The blocking foreground variant is ``repro serve`` on the CLI; both
    accept pushed partial-shard streams from :func:`push` / ``repro
    push`` and fold them to traces byte-identical to in-process runs.

    With *store_dir* set, every completed fold is also archived into
    the trace store at that path as a run of workload == tenant, so
    repeated pushes dedup against each other (see :func:`store`).
    """
    from .ingest import serve_in_thread  # heavier import (asyncio), lazy
    trace_store = store(store_dir, metrics=metrics) \
        if store_dir is not None else None
    return serve_in_thread(host, port, checkpoint_dir=checkpoint_dir,
                           checkpoint_every=checkpoint_every,
                           metrics=metrics, store=trace_store)


def push(workload: str, nprocs: int = 8, *,
         host: str = "127.0.0.1", port: int = 0,
         tenant: str = "default",
         seed: int = 1,
         options: Optional[TracerOptions] = None,
         chunk_calls: int = 256,
         params: Optional[dict] = None,
         noise: float = 0.05):
    """Run *workload* locally while streaming partial shards to an
    ingest server at ``host:port``; returns a
    :class:`~repro.ingest.client.PushResult` whose ``trace_bytes`` is
    the server-side fold — byte-identical to :func:`trace` with the
    same options (the ingest subsystem's core invariant)."""
    from .ingest import push as _push  # heavier import (sockets), lazy
    return _push(workload, nprocs, host=host, port=port, tenant=tenant,
                 seed=seed, options=options, chunk_calls=chunk_calls,
                 params=params, noise=noise)


#: ReplayOptions fields that used to travel as loose keyword arguments
#: to the internal replay helpers; honored here for one release with a
#: DeprecationWarning, then removed
_LEGACY_REPLAY_KEYS = frozenset({
    "seed", "noise", "net", "fault_plan", "fault_seed",
    "extrapolate_ranks", "node_size", "spans",
})


def replay(trace: Union[bytes, str, os.PathLike], *,
           options: Optional[ReplayOptions] = None,
           **legacy) -> ReplayResult:
    """Re-execute a trace blob (or file) and report divergences.

    With default :class:`~repro.replay.ReplayOptions` the replay is
    fully directed — the fixed-point check in report form, guaranteed
    ``diverged == False``.  Setting ``net=``, ``fault_plan=``, or
    ``extrapolate_ranks=`` on the options object runs the what-if
    engine: relaxed replay under the modified conditions, with the
    lockstep comparator reporting the first call per rank whose outcome
    left the record.  See :func:`repro.replay.run_divergence`.

    The historical loose keywords (``seed=``, ``net=``, ...) are still
    accepted and folded into the options object with a
    :class:`DeprecationWarning`; unknown keywords raise ``TypeError``.
    """
    if legacy:
        unknown = sorted(set(legacy) - _LEGACY_REPLAY_KEYS)
        if unknown:
            raise TypeError(f"replay() got unexpected keyword "
                            f"argument(s) {unknown}")
        warnings.warn(
            f"passing {sorted(legacy)} to repro.api.replay() as loose "
            f"keywords is deprecated; set them on ReplayOptions(...) "
            f"and pass options=",
            DeprecationWarning, stacklevel=2)
        base = options if options is not None else ReplayOptions()
        options = replace(base, **legacy)
    if isinstance(trace, (str, os.PathLike)):
        with open(trace, "rb") as fh:
            trace = fh.read()
    return run_divergence(trace, options)
