"""``repro.replay`` — trace replay and mini-app generation (paper §6).

* :func:`replay_trace` — re-execute a Pilgrim trace on a fresh simulated
  world, completing non-blocking operations in the recorded order.
* :func:`generate_miniapp` — emit a standalone Python proxy program with
  the same communication pattern as the trace (the paper's planned
  "mini-app generator").
"""

from .codegen import generate_miniapp, load_miniapp
from .engine import (RankReplayer, ReplayState, replay_trace,
                     structurally_equal)

__all__ = ["RankReplayer", "ReplayState", "generate_miniapp",
           "load_miniapp", "replay_trace", "structurally_equal"]
