"""``repro.replay`` — trace replay, what-if divergence, mini-app
generation (paper §6).

* :func:`replay_trace` — re-execute a Pilgrim trace on a fresh simulated
  world, completing non-blocking operations in the recorded order (the
  fixed-point check); built on :func:`build_rank_programs` /
  :func:`run_replay`, the shared entry points.
* :func:`run_divergence` / :class:`ReplayOptions` /
  :class:`ReplayResult` — what-if re-execution under modified conditions
  (alpha–beta network overrides, seeded scheduler faults, rank-count
  extrapolation) with a lockstep :class:`LockstepComparator` producing a
  first-divergence-per-rank :class:`DivergenceReport`.  The public
  facade is :func:`repro.api.replay`.
* :func:`run_replay_fuzz` — corruption fuzzing of the replay entry
  point (mutated traces must fail structurally, never crash).
* :func:`generate_miniapp` — emit a standalone Python proxy program with
  the same communication pattern as the trace (the paper's planned
  "mini-app generator").
"""

from .codegen import generate_miniapp, load_miniapp
from .comparator import (DIVERGENCE_REPORT_SCHEMA, DivergencePoint,
                         DivergenceReport, LockstepComparator)
from .divergence import (ExtrapolationError, ReplayOptions, ReplayResult,
                         parse_net, run_divergence)
from .engine import (RankReplayer, ReplayState, build_rank_programs,
                     replay_trace, run_replay, structurally_equal)
from .fuzz import ReplayFuzzReport, run_replay_fuzz

__all__ = [
    "DIVERGENCE_REPORT_SCHEMA", "DivergencePoint", "DivergenceReport",
    "ExtrapolationError", "LockstepComparator", "RankReplayer",
    "ReplayFuzzReport", "ReplayOptions", "ReplayResult", "ReplayState",
    "build_rank_programs", "generate_miniapp", "load_miniapp",
    "parse_net", "replay_trace", "run_divergence", "run_replay",
    "run_replay_fuzz", "structurally_equal",
]
