"""Trace replay — the paper's §6 roadmap, implemented.

The introduction motivates lossless tracing with replay: "one needs to
handle the remaining arguments and preserve enough information in the
compressed trace so that each non-blocking communication can be matched
with the test call that completed it."  This engine closes that loop: it
takes a Pilgrim trace (bytes) and produces rank programs for
:class:`repro.mpisim.SimMPI` that re-issue every recorded MPI call with
its recorded arguments — communicator construction included — and
complete non-blocking operations in the *recorded* order (directed
replay of Waitany/Waitsome/Testsome indices).

Replay maintains the symbolic↔live object bindings the tracer created:

* communicator ids are re-derived with the same group-max algorithm and
  checked against the recorded ids (a disagreement means the trace and
  the replayed construction order diverged — an internal error);
* datatypes are rebuilt from their recorded recipes;
* request ids ``(pool, slot)`` bind at creation and release at the
  completing call, mirroring §3.4.3;
* buffers are materialized lazily per recorded segment id, preserving
  displacements.

The fixed point property — tracing a replay yields the original trace's
call content, signature for signature (:func:`structurally_equal`) —
holds for programs whose non-deterministic choices are fully directed by
the trace (no empty Test* polls); ``tests/test_replay.py`` asserts it.
Timing statistics necessarily differ (a replay has its own clock), which
is why the comparison is structural rather than byte-wise.
"""

from __future__ import annotations

from typing import Any, Optional

from ..mpisim import constants as C
from ..mpisim.comm import Comm
from ..mpisim.datatypes import BUILTINS, Datatype
from ..mpisim.errors import MpiSimError, RankProgramError
from ..mpisim.group import Group
from ..mpisim.ops import ALL_OPS
from ..mpisim.runtime import RankAPI, SimMPI
from ..core.decoder import TraceDecoder
from ..core.errors import ReplayFormatError, TraceFormatError
from ..core.encoder import (CommIdSpace, PTR_DEVICE, PTR_HEAP, PTR_NULL,
                            PTR_STACK, WinIdSpace)
from ..core.relative import decode as rel_decode

_OPS_BY_HANDLE = {op.handle: op for op in ALL_OPS}

#: calls replay re-issues structurally but whose outputs need no binding
_QUERY_CALLS = frozenset((
    "MPI_Comm_size", "MPI_Comm_rank", "MPI_Comm_remote_size",
    "MPI_Comm_test_inter", "MPI_Comm_compare", "MPI_Comm_get_name",
    "MPI_Group_size", "MPI_Group_rank", "MPI_Group_compare",
    "MPI_Group_translate_ranks", "MPI_Type_size", "MPI_Type_get_extent",
    "MPI_Cart_coords", "MPI_Cart_rank", "MPI_Cart_shift",
    "MPI_Dims_create", "MPI_Initialized", "MPI_Get_processor_name",
    "MPI_Get_count", "MPI_Request_get_status", "MPI_Iprobe",
))


class ReplayState:
    """Cross-rank validation state.

    NB: symbolic communicator/window ids are only *locally* unique — a
    split's colour groups are distinct communicators that legitimately
    share one symbolic id (the paper's design).  The sym -> live-object
    bindings therefore live per rank (:class:`RankReplayer`); what is
    shared here is the id-agreement mirror used to validate that the
    replayed construction order derives the recorded ids.
    """

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        #: mirror of the tracer's id-agreement algorithms
        self.comm_space = CommIdSpace(nprocs)
        self.win_space = WinIdSpace(nprocs)

    def bind_comm(self, sym: int, comm: Optional[Comm]) -> None:
        """Backwards-compatible shim (bindings are per rank now); still
        validates the derivation."""
        if comm is not None and self.comm_space.sym_for(comm) != sym:
            raise ReplayFormatError(
                f"replay diverged: recorded comm id {sym} does not match "
                f"the replayed construction order")


class RankReplayer:
    """Replays one rank's decoded call stream.

    ``calls`` may be a list of :class:`DecodedCall` or a zero-argument
    callable returning an iterable (the stream is walked twice: a
    prescan discovers the memory segments so they can be materialized in
    ascending symbolic-id order — preserving the tracer's id assignment
    and hence the fixed-point property — then the replay pass runs).

    ``directed=True`` (the default) pins every nondeterministic choice —
    Wait*/Test* completion picks and wildcard receive sources — to the
    recorded outcome, which is what makes the fixed point hold.
    ``directed=False`` relaxes exactly those choices to the live
    simulator (the what-if mode of :mod:`repro.replay.divergence`):
    wildcard receives match in live arrival order and Waitany/Waitsome
    pick from the live completion set, while Test* flags stay recorded
    so the call *count* is conserved and empty polls cannot livelock.

    ``strict_ids=False`` drops the id-agreement validation (recorded
    comm/win ids vs the replayed construction order) — required when
    replaying onto a different world size, where the derivation
    legitimately differs.
    """

    def __init__(self, rank: int, state: ReplayState, calls, *,
                 directed: bool = True, strict_ids: bool = True) -> None:
        self.rank = rank
        self.state = state
        self._calls = calls
        self.directed = directed
        self.strict_ids = strict_ids
        # per-rank symbolic bindings
        self.type_map: dict[int, Datatype] = {}
        self.group_map: dict[int, Group] = {}
        self.req_map: dict[tuple, Any] = {}
        self.seg_map: dict[int, tuple[int, int]] = {}   # sid -> (addr, size)
        self.dev_seg_map: dict[tuple[int, int], tuple[int, int]] = {}
        self.stack_base = 0x10  # synthetic addresses for stack-id buffers
        #: (request sym, occurrence) -> recorded completion source enc
        self._any_sources: dict[tuple, Any] = {}
        self._any_occ: dict[tuple, int] = {}
        #: per-rank symbolic comm/win id -> live object (ids are only
        #: locally unique: different ranks may map one id to different
        #: communicators, e.g. the colour groups of one split)
        self.comm_map: dict[int, Optional[Comm]] = {}
        self.win_map: dict[int, Any] = {}

    # -- symbolic object bindings (per rank) --------------------------------------

    def bind_comm(self, sym: int, comm: Optional[Comm]) -> None:
        if comm is None:
            return
        if self.strict_ids:
            derived = self.state.comm_space.sym_for(comm)
            if derived != sym:
                raise ReplayFormatError(
                    f"replay diverged: recorded comm id {sym} but the "
                    f"replayed construction order derives {derived}")
        self.comm_map[sym] = comm

    def comm(self, sym: int) -> Optional[Comm]:
        if sym == -1:
            return None
        try:
            return self.comm_map[sym]
        except KeyError:
            raise ReplayFormatError(
                f"replay references unknown comm id {sym}")

    def bind_win(self, sym: int, win) -> None:
        if win is None:
            return
        if self.strict_ids:
            derived = self.state.win_space.sym_for(win)
            if derived != sym:
                raise ReplayFormatError(
                    f"replay diverged: recorded win id {sym} but the "
                    f"replayed construction order derives {derived}")
        self.win_map[sym] = win

    def win(self, sym: int):
        try:
            return self.win_map[sym]
        except KeyError:
            raise ReplayFormatError(
                f"replay references unknown win id {sym}")

    def _call_stream(self):
        return self._calls() if callable(self._calls) else iter(self._calls)

    #: generous per-segment tail so any in-segment displacement the trace
    #: references stays inside the materialized allocation
    _SEG_PAD = 1 << 16

    _ANY_SOURCE_ENC = (0, C.ANY_SOURCE)  # (MARK_SPECIAL, ANY_SOURCE)

    def _prescan(self) -> list[tuple[int, int, int]]:
        """One pass over the stream discovering (a) every memory segment
        with its max displacement and (b) the recorded completion source
        of every wildcard irecv (keyed by request id and occurrence, so
        pool-slot reuse is handled) — the data directed replay needs."""
        need: dict[int, tuple[int, int]] = {}  # sid -> (device, max_off)
        occ_next: dict[tuple, int] = {}
        occ_active: dict[tuple, int] = {}
        self._any_sources: dict[tuple, Any] = {}
        skip_sids: set[int] = set()

        def note_completion(syms, statuses, idxs=None):
            if statuses is None:
                return
            pairs = zip(idxs, statuses) if idxs is not None \
                else enumerate(statuses)
            for i, st in pairs:
                if i is None or i < 0 or i >= len(syms):
                    continue
                sym = syms[i]
                if sym is None:
                    continue
                key = tuple(sym)
                occ = occ_active.pop(key, None)
                if occ is not None and st is not None:
                    self._any_sources[(key, occ)] = st[0]

        for call in self._call_stream():
            p = call.params
            for v in p.values():
                if not (isinstance(v, tuple) and v):
                    continue
                if v[0] == PTR_HEAP and len(v) == 3:
                    _k, sid, off = v
                    dev, prev = need.get(sid, (-1, 0))
                    need[sid] = (-1, max(prev, off))
                elif v[0] == PTR_DEVICE and len(v) == 4:
                    _k, dev, sid, off = v
                    _d, prev = need.get(sid, (dev, 0))
                    need[sid] = (dev, max(prev, off))
            if call.fname == "MPI_Win_allocate":
                bp = p.get("baseptr")
                if isinstance(bp, tuple) and bp and bp[0] == PTR_HEAP:
                    skip_sids.add(bp[1])
            if call.fname == "MPI_Irecv" \
                    and p.get("source") == self._ANY_SOURCE_ENC:
                key = tuple(p["request"])
                occ = occ_next.get(key, 0)
                occ_next[key] = occ + 1
                occ_active[key] = occ
            elif call.fname == "MPI_Wait":
                sym = p.get("request")
                if sym is not None:
                    note_completion([sym], [p.get("status")], [0])
            elif call.fname in ("MPI_Waitall", "MPI_Testall"):
                note_completion(p.get("array_of_requests") or (),
                                p.get("array_of_statuses"))
            elif call.fname in ("MPI_Waitany", "MPI_Testany"):
                idx = p.get("index")
                if isinstance(idx, int) and idx >= 0:
                    note_completion(p.get("array_of_requests") or (),
                                    [p.get("status")], [idx])
            elif call.fname in ("MPI_Waitsome", "MPI_Testsome"):
                idxs = p.get("array_of_indices")
                if idxs:
                    note_completion(p.get("array_of_requests") or (),
                                    p.get("array_of_statuses"), list(idxs))
        return [(sid, dev, off)
                for sid, (dev, off) in sorted(need.items())
                if sid not in skip_sids]

    def _materialize_segments(self, m: RankAPI) -> None:
        """Allocate every recorded segment through the *intercepted*
        allocator, ascending by sid, so a tracer attached to the replay
        assigns the same symbolic ids."""
        for sid, dev, max_off in self._prescan():
            size = max_off + self._SEG_PAD
            if dev < 0:
                addr = m.malloc(size)
                self.seg_map[sid] = (addr, size)
            else:
                addr = m.cuda_malloc(size, device=dev)
                self.dev_seg_map[(dev, sid)] = (addr, size)

    # -- argument materialization ----------------------------------------------------

    def _ctx_rank(self, comm: Optional[Comm]) -> int:
        if comm is None:
            return self.rank
        cr = comm.group.rank_of(self.rank)
        if cr == C.UNDEFINED and comm.remote_group is not None:
            cr = comm.remote_group.rank_of(self.rank)
        return cr if cr != C.UNDEFINED else self.rank

    def _rankval(self, v, ctx: int) -> int:
        return rel_decode(v, ctx) if isinstance(v, tuple) else v

    def _datatype(self, m: RankAPI, sym: int) -> Datatype:
        if sym < 0:
            try:
                return BUILTINS[sym]
            except KeyError:
                raise ReplayFormatError(f"unknown builtin datatype {sym}")
        try:
            return self.type_map[sym]
        except KeyError:
            raise ReplayFormatError(
                f"replay references unknown datatype {sym}")

    def _buffer(self, m: RankAPI, enc: tuple, nbytes: int) -> int:
        """Materialize a recorded pointer encoding as a live address."""
        kind = enc[0]
        if kind == PTR_NULL:
            return 0
        if kind == PTR_HEAP:
            _k, sid, off = enc
            got = self.seg_map.get(sid)
            if got is None:  # safety net; prescan should have seen it
                addr = m.malloc(off + self._SEG_PAD)
                got = self.seg_map[sid] = (addr, off + self._SEG_PAD)
            return got[0] + off
        if kind == PTR_DEVICE:
            _k, dev, sid, off = enc
            got = self.dev_seg_map.get((dev, sid))
            if got is None:
                addr = m.cuda_malloc(off + self._SEG_PAD, device=dev)
                got = self.dev_seg_map[(dev, sid)] = (addr,
                                                      off + self._SEG_PAD)
            return got[0] + off
        if kind == PTR_STACK:
            # a synthetic sub-heap address, stable per stack id
            return self.stack_base + enc[1] * 16
        raise ReplayFormatError(f"unknown pointer encoding {enc!r}")

    def _status_source(self, st_enc, ctx: int) -> Optional[int]:
        """Recorded completion source (directed replay of ANY_SOURCE)."""
        if st_enc is None:
            return None
        src_enc, _tag = st_enc
        return self._rankval(src_enc, ctx)

    # -- request bookkeeping ----------------------------------------------------------

    def _bind_req(self, sym, req) -> None:
        if sym is not None:
            self.req_map[tuple(sym)] = req

    def _take_req(self, sym):
        if sym is None:
            return None
        return self.req_map.get(tuple(sym))

    def _release_req(self, sym, persistent=False) -> None:
        if sym is not None and not persistent:
            self.req_map.pop(tuple(sym), None)

    def _after_complete(self, req) -> None:
        """Mirror the tracer's §3.3.1 wait-time step: a completed
        ``MPI_Comm_idup`` delivers its communicator (and id) here."""
        if req is not None and getattr(req, "kind", "") == "comm_idup" \
                and isinstance(req.value, Comm):
            sym = self.state.comm_space.sym_for(req.value)
            if sym not in self.comm_map:
                self.comm_map[sym] = req.value

    # -- the interpreter --------------------------------------------------------------------

    def program(self, m: RankAPI):
        """Generator: re-issues every recorded call on the live runtime."""
        self.comm_map.setdefault(0, m.world)
        self._materialize_segments(m)
        for call in self._call_stream():
            handler = _HANDLERS.get(call.fname)
            if handler is not None:
                yield from handler(self, m, call.params)
            elif call.fname in ("MPI_Init", "MPI_Finalize"):
                continue  # emitted by the runtime itself
            elif call.fname in _QUERY_CALLS:
                yield from self._replay_query(m, call.fname, call.params)
            else:
                raise ReplayFormatError(
                    f"replay has no handler for {call.fname}")

    def _replay_query(self, m: RankAPI, fname: str, p: dict):
        """Local queries: re-issue for trace fidelity, ignore results."""
        comm = self.comm(p["comm"]) if "comm" in p else None
        if fname == "MPI_Comm_size":
            m.comm_size(comm)
        elif fname == "MPI_Comm_rank":
            m.comm_rank(comm)
        elif fname == "MPI_Comm_remote_size":
            m.comm_remote_size(comm)
        elif fname == "MPI_Comm_test_inter":
            m.comm_test_inter(comm)
        elif fname == "MPI_Comm_get_name":
            m.comm_get_name(comm)
        elif fname == "MPI_Group_size":
            m.group_size(self.group_map[p["group"]])
        elif fname == "MPI_Group_rank":
            m.group_rank(self.group_map[p["group"]])
        elif fname == "MPI_Type_size":
            m.type_size(self._datatype(m, p["datatype"]))
        elif fname == "MPI_Type_get_extent":
            m.type_get_extent(self._datatype(m, p["datatype"]))
        elif fname == "MPI_Cart_coords":
            ctx = self._ctx_rank(comm)
            m.cart_coords(comm, self._rankval(p["rank"], ctx))
        elif fname == "MPI_Cart_shift":
            m.cart_shift(comm, p["direction"], p["disp"])
        elif fname == "MPI_Cart_rank":
            ctx = self._ctx_rank(comm)
            mine = comm.topo.coords_of(ctx)
            coords = [c + o for c, o in zip(p["coords"], mine)] \
                if comm.topo is not None else list(p["coords"])
            m.cart_rank(comm, coords)
        elif fname == "MPI_Dims_create":
            m.dims_create(p["nnodes"], p["ndims"])
        elif fname == "MPI_Initialized":
            m.initialized()
        elif fname == "MPI_Get_processor_name":
            m.get_processor_name()
        elif fname == "MPI_Iprobe":
            ctx = self._ctx_rank(comm)
            m.iprobe(self._rankval(p["source"], ctx),
                     self._rankval(p["tag"], ctx), comm)
        # MPI_Get_count / Request_get_status / others: no comm side
        # effects; trace fidelity for them is secondary
        return
        yield  # pragma: no cover - make this a generator


# ---------------------------------------------------------------------------
# handlers: fname -> generator(replayer, api, params)
# ---------------------------------------------------------------------------

def _h_p2p_send(blocking_fname, api_name, nb_api_name):
    def handler(r: RankReplayer, m: RankAPI, p: dict):
        comm = r.comm(p["comm"])
        ctx = r._ctx_rank(comm)
        dtype = r._datatype(m, p["datatype"])
        nbytes = p["count"] * dtype.size
        buf = r._buffer(m, p["buf"], nbytes)
        dest = r._rankval(p["dest"], ctx)
        tag = r._rankval(p["tag"], ctx)
        if "request" in p:
            req = getattr(m, nb_api_name)(buf, p["count"], dtype, dest,
                                          tag, comm)
            r._bind_req(p["request"], req)
        else:
            yield from getattr(m, api_name)(buf, p["count"], dtype, dest,
                                            tag, comm)
    return handler


def _h_recv(r, m, p):
    comm = r.comm(p["comm"])
    ctx = r._ctx_rank(comm)
    dtype = r._datatype(m, p["datatype"])
    buf = r._buffer(m, p["buf"], p["count"] * dtype.size)
    src = r._rankval(p["source"], ctx)
    tag = r._rankval(p["tag"], ctx)
    directed = None
    if src == C.ANY_SOURCE and r.directed:
        # directed replay: receive from the recorded completion source
        directed = r._status_source(p.get("status"), ctx)
    status = True if p.get("status") is not None else None
    yield from m.recv(buf, p["count"], dtype, src, tag, comm, status=status,
                      directed_source=directed)


def _h_irecv(r, m, p):
    comm = r.comm(p["comm"])
    ctx = r._ctx_rank(comm)
    dtype = r._datatype(m, p["datatype"])
    buf = r._buffer(m, p["buf"], p["count"] * dtype.size)
    src = r._rankval(p["source"], ctx)
    tag = r._rankval(p["tag"], ctx)
    directed = None
    if p["source"] == r._ANY_SOURCE_ENC and r.directed:
        key = tuple(p["request"])
        occ = r._any_occ.get(key, 0)
        r._any_occ[key] = occ + 1
        rec = r._any_sources.get((key, occ))
        if rec is not None:
            directed = r._rankval(rec, ctx)
    req = m.irecv(buf, p["count"], dtype, src, tag, comm,
                  directed_source=directed)
    r._bind_req(p["request"], req)
    return
    yield  # pragma: no cover


def _h_sendrecv(r, m, p):
    comm = r.comm(p["comm"])
    ctx = r._ctx_rank(comm)
    stype = r._datatype(m, p["sendtype"])
    rtype = r._datatype(m, p["recvtype"])
    sbuf = r._buffer(m, p["sendbuf"], p["sendcount"] * stype.size)
    rbuf = r._buffer(m, p["recvbuf"], p["recvcount"] * rtype.size)
    src = r._rankval(p["source"], ctx)
    directed = None
    if src == C.ANY_SOURCE and r.directed:
        directed = r._status_source(p.get("status"), ctx)
    status = True if p.get("status") is not None else None
    yield from m.sendrecv(
        sbuf, p["sendcount"], stype, r._rankval(p["dest"], ctx),
        r._rankval(p["sendtag"], ctx),
        rbuf, p["recvcount"], rtype, src, r._rankval(p["recvtag"], ctx),
        comm, status=status, directed_source=directed)


def _h_probe(r, m, p):
    comm = r.comm(p["comm"])
    ctx = r._ctx_rank(comm)
    src = r._rankval(p["source"], ctx)
    directed = None
    if src == C.ANY_SOURCE and r.directed:
        directed = r._status_source(p.get("status"), ctx)
    yield from m.probe(src, r._rankval(p["tag"], ctx), comm,
                       directed_source=directed)


def _h_wait(r, m, p):
    req = r._take_req(p["request"])
    status = True if p.get("status") is not None else None
    yield from m.wait(req, status=status)
    r._after_complete(req)
    if req is not None and not req.persistent:
        r._release_req(p["request"])


def _h_waitall(r, m, p):
    reqs = [r._take_req(sym) for sym in (p["array_of_requests"] or ())]
    statuses = True if p.get("array_of_statuses") is not None else None
    yield from m.waitall(reqs, statuses=statuses)
    for sym, req in zip(p["array_of_requests"] or (), reqs):
        r._after_complete(req)
        if req is not None and not req.persistent:
            r._release_req(sym)


def _h_waitany(r, m, p):
    """Directed: complete the *recorded* entry, via a real MPI_Waitany.
    Relaxed: let the live runtime pick, then release what it picked."""
    idx = p["index"]
    syms = p["array_of_requests"] or ()
    reqs = [r._take_req(sym) for sym in syms]
    status = True if p.get("status") is not None else None
    if not r.directed:
        got = yield from m.waitany(reqs if reqs else [None], status=status)
        live_idx = got[0] if isinstance(got, tuple) else got
        if isinstance(live_idx, int) and 0 <= live_idx < len(reqs):
            req = reqs[live_idx]
            r._after_complete(req)
            if req is not None and not req.persistent:
                r._release_req(syms[live_idx])
        return
    if idx == C.UNDEFINED or idx is None or idx < 0:
        yield from m.waitany(reqs if reqs else [None], status=status)
        return
    yield from m.waitany(reqs, status=status, directed_index=idx)
    req = reqs[idx]
    r._after_complete(req)
    if req is not None and not req.persistent:
        r._release_req(syms[idx])


def _h_waitsome(r, m, p):
    idxs = p.get("array_of_indices")
    syms = p["array_of_requests"] or ()
    reqs = [r._take_req(sym) for sym in syms]
    statuses = True if p.get("array_of_statuses") is not None else None
    if not r.directed:
        got = yield from m.waitsome(reqs if reqs else [None],
                                    statuses=statuses)
        live_idxs = got[0] if isinstance(got, tuple) else got
        for idx in live_idxs or ():
            if not (isinstance(idx, int) and 0 <= idx < len(reqs)):
                continue
            req = reqs[idx]
            r._after_complete(req)
            if req is not None and not req.persistent:
                r._release_req(syms[idx])
        return
    if idxs is None:
        # recorded outcount == MPI_UNDEFINED: every entry was null
        yield from m.waitsome(reqs if reqs else [None], statuses=statuses)
        return
    yield from m.waitsome(reqs, statuses=statuses,
                          directed_indices=list(idxs))
    for idx in idxs:
        req = reqs[idx]
        r._after_complete(req)
        if req is not None and not req.persistent:
            r._release_req(syms[idx])


def _h_test(r, m, p):
    sym = p.get("request")
    req = r._take_req(sym)
    flag = bool(p.get("flag"))
    status = True if p.get("status") is not None else None
    yield from m.test(req, status=status, directed_flag=flag)
    if flag:
        r._after_complete(req)
        if req is not None and not req.persistent:
            r._release_req(sym)


def _h_testall(r, m, p):
    syms = p.get("array_of_requests") or ()
    reqs = [r._take_req(sym) for sym in syms]
    flag = bool(p.get("flag"))
    statuses = True if p.get("array_of_statuses") is not None else None
    yield from m.testall(reqs, statuses=statuses, directed_flag=flag)
    if flag:
        for sym, req in zip(syms, reqs):
            r._after_complete(req)
            if req is not None and not req.persistent:
                r._release_req(sym)


def _h_testany(r, m, p):
    syms = p.get("array_of_requests") or ()
    reqs = [r._take_req(sym) for sym in syms]
    flag = bool(p.get("flag"))
    idx = p.get("index")
    status = True if p.get("status") is not None else None
    if not flag:
        yield from m.testany(reqs, status=status, directed_flag=False)
        return
    if not (isinstance(idx, int) and idx >= 0):
        yield from m.testany(reqs if reqs else [None], status=status)
        return
    yield from m.testany(reqs, status=status, directed_index=idx)
    req = reqs[idx]
    r._after_complete(req)
    if req is not None and not req.persistent:
        r._release_req(syms[idx])


def _h_testsome(r, m, p):
    syms = p.get("array_of_requests") or ()
    reqs = [r._take_req(sym) for sym in syms]
    idxs = p.get("array_of_indices")
    statuses = True if p.get("array_of_statuses") is not None else None
    if idxs is None:
        yield from m.testsome(reqs if reqs else [None], statuses=statuses)
        return
    yield from m.testsome(reqs, statuses=statuses,
                          directed_indices=list(idxs))
    for idx in idxs:
        req = reqs[idx]
        r._after_complete(req)
        if req is not None and not req.persistent:
            r._release_req(syms[idx])


def _h_request_free(r, m, p):
    req = r._take_req(p["request"])
    if req is not None:
        m.request_free(req)
    r._release_req(p["request"], persistent=False)
    return
    yield  # pragma: no cover


def _h_cancel(r, m, p):
    req = r._take_req(p["request"])
    if req is not None:
        m.cancel(req)
    return
    yield  # pragma: no cover


def _coll_bufs(r, m, p, scount, stype_key, rcount, rtype_key):
    stype = r._datatype(m, p[stype_key]) if stype_key in p else None
    rtype = r._datatype(m, p[rtype_key]) if rtype_key in p else None
    sbuf = r._buffer(m, p["sendbuf"], (scount or 1) * (stype.size if stype
                                                       else 8)) \
        if "sendbuf" in p else 0
    rbuf = r._buffer(m, p["recvbuf"], (rcount or 1) * (rtype.size if rtype
                                                       else 8)) \
        if "recvbuf" in p else 0
    return sbuf, stype, rbuf, rtype


def _h_barrier(r, m, p):
    yield from m.barrier(r.comm(p["comm"]))


def _h_bcast(r, m, p):
    comm = r.comm(p["comm"])
    ctx = r._ctx_rank(comm)
    dtype = r._datatype(m, p["datatype"])
    buf = r._buffer(m, p["buffer"], p["count"] * dtype.size)
    yield from m.bcast(buf, p["count"], dtype,
                       r._rankval(p["root"], ctx), comm)


def _h_reduce(r, m, p):
    comm = r.comm(p["comm"])
    ctx = r._ctx_rank(comm)
    dtype = r._datatype(m, p["datatype"])
    sbuf, _, rbuf, _ = _coll_bufs(r, m, p, p["count"], "datatype",
                                  p["count"], "datatype")
    yield from m.reduce(sbuf, rbuf, p["count"], dtype,
                        _OPS_BY_HANDLE[p["op"]],
                        r._rankval(p["root"], ctx), comm)


def _h_allreduce(r, m, p):
    comm = r.comm(p["comm"])
    dtype = r._datatype(m, p["datatype"])
    sbuf, _, rbuf, _ = _coll_bufs(r, m, p, p["count"], "datatype",
                                  p["count"], "datatype")
    if "request" in p:
        req = m.iallreduce(sbuf, rbuf, p["count"], dtype,
                           _OPS_BY_HANDLE[p["op"]], comm)
        r._bind_req(p["request"], req)
    else:
        yield from m.allreduce(sbuf, rbuf, p["count"], dtype,
                               _OPS_BY_HANDLE[p["op"]], comm)


def _h_gather_like(api_name, rooted=True):
    def handler(r: RankReplayer, m: RankAPI, p: dict):
        comm = r.comm(p["comm"])
        ctx = r._ctx_rank(comm)
        stype = r._datatype(m, p["sendtype"])
        rtype = r._datatype(m, p["recvtype"])
        scount = p.get("sendcount", 1)
        rcount = p.get("recvcount", 1)
        sbuf = r._buffer(m, p["sendbuf"], scount * stype.size)
        rbuf = r._buffer(m, p["recvbuf"], max(rcount, 1) * rtype.size)
        args = [sbuf, scount, stype, rbuf]
        if api_name in ("gatherv", "allgatherv"):
            args.extend((list(p["recvcounts"] or ()) or None,
                         list(p["displs"] or ()) or None, rtype))
        else:
            args.extend((rcount, rtype))
        if rooted:
            args.append(r._rankval(p["root"], ctx))
        args.append(comm)
        yield from getattr(m, api_name)(*args)
    return handler


def _h_scatterv(r, m, p):
    comm = r.comm(p["comm"])
    ctx = r._ctx_rank(comm)
    stype = r._datatype(m, p["sendtype"])
    rtype = r._datatype(m, p["recvtype"])
    sbuf = r._buffer(m, p["sendbuf"], 8)
    rbuf = r._buffer(m, p["recvbuf"], max(p["recvcount"], 1) * rtype.size)
    yield from m.scatterv(sbuf, list(p["sendcounts"] or ()) or None,
                          list(p["displs"] or ()) or None, stype, rbuf,
                          p["recvcount"], rtype,
                          r._rankval(p["root"], ctx), comm)


def _h_alltoall(r, m, p):
    comm = r.comm(p["comm"])
    stype = r._datatype(m, p["sendtype"])
    rtype = r._datatype(m, p["recvtype"])
    sbuf = r._buffer(m, p["sendbuf"], p["sendcount"] * stype.size)
    rbuf = r._buffer(m, p["recvbuf"], p["recvcount"] * rtype.size)
    if "request" in p:
        req = m.ialltoall(sbuf, p["sendcount"], stype, rbuf, p["recvcount"],
                          rtype, comm)
        r._bind_req(p["request"], req)
    else:
        yield from m.alltoall(sbuf, p["sendcount"], stype, rbuf,
                              p["recvcount"], rtype, comm)


def _h_alltoallv(r, m, p):
    comm = r.comm(p["comm"])
    stype = r._datatype(m, p["sendtype"])
    rtype = r._datatype(m, p["recvtype"])
    scounts = list(p["sendcounts"])
    rcounts = list(p["recvcounts"])
    sbuf = r._buffer(m, p["sendbuf"], sum(scounts) * stype.size)
    rbuf = r._buffer(m, p["recvbuf"], sum(rcounts) * rtype.size)
    yield from m.alltoallv(sbuf, scounts, list(p["sdispls"]), stype,
                           rbuf, rcounts, list(p["rdispls"]), rtype, comm)


def _h_reduce_scatter(r, m, p):
    comm = r.comm(p["comm"])
    dtype = r._datatype(m, p["datatype"])
    counts = list(p["recvcounts"])
    sbuf = r._buffer(m, p["sendbuf"], sum(counts) * dtype.size)
    rbuf = r._buffer(m, p["recvbuf"], max(counts) * dtype.size
                     if counts else 8)
    yield from m.reduce_scatter(sbuf, rbuf, counts, dtype,
                                _OPS_BY_HANDLE[p["op"]], comm)


def _h_reduce_scatter_block(r, m, p):
    comm = r.comm(p["comm"])
    dtype = r._datatype(m, p["datatype"])
    sbuf, _, rbuf, _ = _coll_bufs(r, m, p, p["recvcount"], "datatype",
                                  p["recvcount"], "datatype")
    yield from m.reduce_scatter_block(sbuf, rbuf, p["recvcount"], dtype,
                                      _OPS_BY_HANDLE[p["op"]], comm)


def _h_scan(api_name):
    def handler(r: RankReplayer, m: RankAPI, p: dict):
        comm = r.comm(p["comm"])
        dtype = r._datatype(m, p["datatype"])
        sbuf, _, rbuf, _ = _coll_bufs(r, m, p, p["count"], "datatype",
                                      p["count"], "datatype")
        yield from getattr(m, api_name)(sbuf, rbuf, p["count"], dtype,
                                        _OPS_BY_HANDLE[p["op"]], comm)
    return handler


def _h_ibarrier(r, m, p):
    req = m.ibarrier(r.comm(p["comm"]))
    r._bind_req(p["request"], req)
    return
    yield  # pragma: no cover


def _h_ibcast(r, m, p):
    comm = r.comm(p["comm"])
    ctx = r._ctx_rank(comm)
    dtype = r._datatype(m, p["datatype"])
    buf = r._buffer(m, p["buffer"], p["count"] * dtype.size)
    req = m.ibcast(buf, p["count"], dtype, r._rankval(p["root"], ctx), comm)
    r._bind_req(p["request"], req)
    return
    yield  # pragma: no cover


def _h_iallgather(r, m, p):
    comm = r.comm(p["comm"])
    stype = r._datatype(m, p["sendtype"])
    rtype = r._datatype(m, p["recvtype"])
    sbuf = r._buffer(m, p["sendbuf"], p["sendcount"] * stype.size)
    rbuf = r._buffer(m, p["recvbuf"], p["recvcount"] * rtype.size)
    req = m.iallgather(sbuf, p["sendcount"], stype, rbuf, p["recvcount"],
                       rtype, comm)
    r._bind_req(p["request"], req)
    return
    yield  # pragma: no cover


# -- communicator / group / datatype construction ---------------------------------

def _h_comm_dup(r, m, p):
    newcomm = yield from m.comm_dup(r.comm(p["comm"]))
    r.bind_comm(p["newcomm"], newcomm)


def _h_comm_idup(r, m, p):
    req = m.comm_idup(r.comm(p["comm"]))
    r._bind_req(p["request"], req)
    return
    yield  # pragma: no cover


def _h_comm_split(r, m, p):
    comm = r.comm(p["comm"])
    ctx = r._ctx_rank(comm)
    color = r._rankval(p["color"], ctx)
    key = r._rankval(p["key"], ctx)
    newcomm = yield from m.comm_split(comm, color, key)
    if newcomm is not None:
        r.bind_comm(p["newcomm"], newcomm)


def _h_comm_split_type(r, m, p):
    comm = r.comm(p["comm"])
    ctx = r._ctx_rank(comm)
    newcomm = yield from m.comm_split_type(
        comm, p["split_type"], r._rankval(p["key"], ctx))
    if newcomm is not None:
        r.bind_comm(p["newcomm"], newcomm)


def _h_comm_create(r, m, p):
    comm = r.comm(p["comm"])
    group = r.group_map[p["group"]]
    newcomm = yield from m.comm_create(comm, group)
    if newcomm is not None:
        r.bind_comm(p["newcomm"], newcomm)


def _h_comm_free(r, m, p):
    m.comm_free(r.comm(p["comm"]))
    return
    yield  # pragma: no cover


def _h_comm_set_name(r, m, p):
    m.comm_set_name(r.comm(p["comm"]), p["comm_name"])
    return
    yield  # pragma: no cover


def _h_intercomm_create(r, m, p):
    local = r.comm(p["local_comm"])
    peer = r.comm(p["peer_comm"])
    ctx = r._ctx_rank(local)
    newcomm = yield from m.intercomm_create(
        local, r._rankval(p["local_leader"], ctx), peer,
        p["remote_leader"], r._rankval(p["tag"], ctx))
    r.bind_comm(p["newintercomm"], newcomm)


def _h_intercomm_merge(r, m, p):
    inter = r.comm(p["intercomm"])
    newcomm = yield from m.intercomm_merge(inter, bool(p["high"]))
    r.bind_comm(p["newintracomm"], newcomm)


def _h_cart_create(r, m, p):
    comm = r.comm(p["comm_old"])
    newcomm = yield from m.cart_create(comm, p["dims"],
                                       [bool(x) for x in p["periods"]],
                                       bool(p["reorder"]))
    if newcomm is not None:
        r.bind_comm(p["comm_cart"], newcomm)


def _h_cart_sub(r, m, p):
    comm = r.comm(p["comm"])
    newcomm = yield from m.cart_sub(comm,
                                    [bool(x) for x in p["remain_dims"]])
    if newcomm is not None:
        r.bind_comm(p["newcomm"], newcomm)


def _h_group(fn):
    def handler(r: RankReplayer, m: RankAPI, p: dict):
        fn(r, m, p)
        return
        yield  # pragma: no cover
    return handler


def _g_comm_group(r, m, p):
    r.group_map[p["group"]] = m.comm_group(r.comm(p["comm"]))


def _g_incl(r, m, p):
    r.group_map[p["newgroup"]] = m.group_incl(r.group_map[p["group"]],
                                              list(p["ranks"]))


def _g_excl(r, m, p):
    r.group_map[p["newgroup"]] = m.group_excl(r.group_map[p["group"]],
                                              list(p["ranks"]))


def _g_union(r, m, p):
    r.group_map[p["newgroup"]] = m.group_union(r.group_map[p["group1"]],
                                               r.group_map[p["group2"]])


def _g_inter(r, m, p):
    r.group_map[p["newgroup"]] = m.group_intersection(
        r.group_map[p["group1"]], r.group_map[p["group2"]])


def _g_diff(r, m, p):
    r.group_map[p["newgroup"]] = m.group_difference(
        r.group_map[p["group1"]], r.group_map[p["group2"]])


def _g_range_incl(r, m, p):
    r.group_map[p["newgroup"]] = m.group_range_incl(
        r.group_map[p["group"]], [tuple(x) for x in p["ranges"]])


def _g_free(r, m, p):
    grp = r.group_map.pop(p["group"], None)
    if grp is not None:
        m.group_free(grp)


def _h_type_contiguous(r, m, p):
    r.type_map[p["newtype"]] = m.type_contiguous(
        p["count"], r._datatype(m, p["oldtype"]))
    return
    yield  # pragma: no cover


def _h_type_vector(r, m, p):
    r.type_map[p["newtype"]] = m.type_vector(
        p["count"], p["blocklength"], p["stride"],
        r._datatype(m, p["oldtype"]))
    return
    yield  # pragma: no cover


def _h_type_indexed(r, m, p):
    r.type_map[p["newtype"]] = m.type_indexed(
        list(p["array_of_blocklengths"]), list(p["array_of_displacements"]),
        r._datatype(m, p["oldtype"]))
    return
    yield  # pragma: no cover


def _h_type_struct(r, m, p):
    types = [r._datatype(m, sym) for sym in p["array_of_types"]]
    r.type_map[p["newtype"]] = m.type_create_struct(
        list(p["array_of_blocklengths"]), list(p["array_of_displacements"]),
        types)
    return
    yield  # pragma: no cover


def _h_type_commit(r, m, p):
    m.type_commit(r._datatype(m, p["datatype"]))
    return
    yield  # pragma: no cover


def _h_type_free(r, m, p):
    sym = p["datatype"]
    m.type_free(r._datatype(m, sym))
    r.type_map.pop(sym, None)
    return
    yield  # pragma: no cover


def _h_persistent_init(api_name):
    def handler(r: RankReplayer, m: RankAPI, p: dict):
        comm = r.comm(p["comm"])
        ctx = r._ctx_rank(comm)
        dtype = r._datatype(m, p["datatype"])
        buf = r._buffer(m, p["buf"], p["count"] * dtype.size)
        peer_key = "dest" if api_name == "send_init" else "source"
        req = getattr(m, api_name)(buf, p["count"], dtype,
                                   r._rankval(p[peer_key], ctx),
                                   r._rankval(p["tag"], ctx), comm)
        r._bind_req(p["request"], req)
        return
        yield  # pragma: no cover
    return handler


def _h_start(r, m, p):
    req = r._take_req(p["request"])
    if req is not None:
        m.start(req)
    return
    yield  # pragma: no cover


def _h_startall(r, m, p):
    reqs = [r._take_req(sym) for sym in (p["array_of_requests"] or ())]
    m.startall([q for q in reqs if q is not None])
    return
    yield  # pragma: no cover


def _h_win_create(r, m, p):
    comm = r.comm(p["comm"])
    base = r._buffer(m, p["base"], max(p["size"], 1))
    win = yield from m.win_create(base, p["size"], p["disp_unit"], comm)
    r.bind_win(p["win"], win)


def _h_win_allocate(r, m, p):
    comm = r.comm(p["comm"])
    base, win = yield from m.win_allocate(p["size"], p["disp_unit"], comm)
    r.bind_win(p["win"], win)
    bp = p.get("baseptr")
    if isinstance(bp, tuple) and bp and bp[0] == PTR_HEAP:
        r.seg_map[bp[1]] = (base, max(p["size"], 1) + r._SEG_PAD)


def _h_win_free(r, m, p):
    yield from m.win_free(r.win(p["win"]))


def _h_win_set_name(r, m, p):
    m.win_set_name(r.win(p["win"]), p["win_name"])
    return
    yield  # pragma: no cover


def _h_win_fence(r, m, p):
    yield from m.win_fence(r.win(p["win"]), p["assert"])


def _rma_args(r, m, p, key="origin_addr"):
    win = r.win(p["win"])
    ctx = r._ctx_rank(win.comm)
    odt = r._datatype(m, p["origin_datatype"])
    tdt = r._datatype(m, p["target_datatype"])
    obuf = r._buffer(m, p[key], p["origin_count"] * odt.size)
    target = r._rankval(p["target_rank"], ctx)
    return win, odt, tdt, obuf, target


def _h_put(r, m, p):
    win, odt, tdt, obuf, target = _rma_args(r, m, p)
    m.put(obuf, p["origin_count"], odt, target, p["target_disp"],
          p["target_count"], tdt, win)
    return
    yield  # pragma: no cover


def _h_get(r, m, p):
    win, odt, tdt, obuf, target = _rma_args(r, m, p)
    m.get(obuf, p["origin_count"], odt, target, p["target_disp"],
          p["target_count"], tdt, win)
    return
    yield  # pragma: no cover


def _h_accumulate(r, m, p):
    win, odt, tdt, obuf, target = _rma_args(r, m, p)
    m.accumulate(obuf, p["origin_count"], odt, target, p["target_disp"],
                 p["target_count"], tdt, _OPS_BY_HANDLE[p["op"]], win)
    return
    yield  # pragma: no cover


def _h_win_lock(r, m, p):
    win = r.win(p["win"])
    ctx = r._ctx_rank(win.comm)
    yield from m.win_lock(p["lock_type"], r._rankval(p["rank"], ctx), win,
                          p["assert"])


def _h_win_unlock(r, m, p):
    win = r.win(p["win"])
    ctx = r._ctx_rank(win.comm)
    m.win_unlock(r._rankval(p["rank"], ctx), win)
    return
    yield  # pragma: no cover


_HANDLERS = {
    "MPI_Send": _h_p2p_send("MPI_Send", "send", None),
    "MPI_Ssend": _h_p2p_send("MPI_Ssend", "ssend", None),
    "MPI_Bsend": _h_p2p_send("MPI_Bsend", "bsend", None),
    "MPI_Rsend": _h_p2p_send("MPI_Rsend", "rsend", None),
    "MPI_Isend": _h_p2p_send("MPI_Isend", None, "isend"),
    "MPI_Issend": _h_p2p_send("MPI_Issend", None, "issend"),
    "MPI_Recv": _h_recv,
    "MPI_Irecv": _h_irecv,
    "MPI_Sendrecv": _h_sendrecv,
    "MPI_Probe": _h_probe,
    "MPI_Wait": _h_wait,
    "MPI_Waitall": _h_waitall,
    "MPI_Waitany": _h_waitany,
    "MPI_Waitsome": _h_waitsome,
    "MPI_Test": _h_test,
    "MPI_Testall": _h_testall,
    "MPI_Testany": _h_testany,
    "MPI_Testsome": _h_testsome,
    "MPI_Request_free": _h_request_free,
    "MPI_Cancel": _h_cancel,
    "MPI_Barrier": _h_barrier,
    "MPI_Bcast": _h_bcast,
    "MPI_Reduce": _h_reduce,
    "MPI_Allreduce": _h_allreduce,
    "MPI_Iallreduce": _h_allreduce,
    "MPI_Gather": _h_gather_like("gather"),
    "MPI_Gatherv": _h_gather_like("gatherv"),
    "MPI_Scatter": _h_gather_like("scatter"),
    "MPI_Scatterv": _h_scatterv,
    "MPI_Allgather": _h_gather_like("allgather", rooted=False),
    "MPI_Allgatherv": _h_gather_like("allgatherv", rooted=False),
    "MPI_Alltoall": _h_alltoall,
    "MPI_Ialltoall": _h_alltoall,
    "MPI_Alltoallv": _h_alltoallv,
    "MPI_Reduce_scatter": _h_reduce_scatter,
    "MPI_Reduce_scatter_block": _h_reduce_scatter_block,
    "MPI_Scan": _h_scan("scan"),
    "MPI_Exscan": _h_scan("exscan"),
    "MPI_Ibarrier": _h_ibarrier,
    "MPI_Ibcast": _h_ibcast,
    "MPI_Iallgather": _h_iallgather,
    "MPI_Comm_dup": _h_comm_dup,
    "MPI_Comm_idup": _h_comm_idup,
    "MPI_Comm_split": _h_comm_split,
    "MPI_Comm_split_type": _h_comm_split_type,
    "MPI_Comm_create": _h_comm_create,
    "MPI_Comm_free": _h_comm_free,
    "MPI_Comm_set_name": _h_comm_set_name,
    "MPI_Intercomm_create": _h_intercomm_create,
    "MPI_Intercomm_merge": _h_intercomm_merge,
    "MPI_Cart_create": _h_cart_create,
    "MPI_Cart_sub": _h_cart_sub,
    "MPI_Comm_group": _h_group(_g_comm_group),
    "MPI_Group_incl": _h_group(_g_incl),
    "MPI_Group_excl": _h_group(_g_excl),
    "MPI_Group_union": _h_group(_g_union),
    "MPI_Group_intersection": _h_group(_g_inter),
    "MPI_Group_difference": _h_group(_g_diff),
    "MPI_Group_range_incl": _h_group(_g_range_incl),
    "MPI_Group_free": _h_group(_g_free),
    "MPI_Type_contiguous": _h_type_contiguous,
    "MPI_Type_vector": _h_type_vector,
    "MPI_Type_indexed": _h_type_indexed,
    "MPI_Type_create_struct": _h_type_struct,
    "MPI_Type_commit": _h_type_commit,
    "MPI_Type_free": _h_type_free,
    "MPI_Send_init": _h_persistent_init("send_init"),
    "MPI_Recv_init": _h_persistent_init("recv_init"),
    "MPI_Start": _h_start,
    "MPI_Startall": _h_startall,
    "MPI_Win_create": _h_win_create,
    "MPI_Win_allocate": _h_win_allocate,
    "MPI_Win_free": _h_win_free,
    "MPI_Win_set_name": _h_win_set_name,
    "MPI_Win_fence": _h_win_fence,
    "MPI_Put": _h_put,
    "MPI_Get": _h_get,
    "MPI_Accumulate": _h_accumulate,
    "MPI_Win_lock": _h_win_lock,
    "MPI_Win_unlock": _h_win_unlock,
}


# ---------------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------------

def structurally_equal(a_bytes: bytes, b_bytes: bytes) -> bool:
    """Are two traces the same modulo timing statistics?

    Compares every rank's decoded signature stream — the lossless call
    content.  CST duration sums are excluded: a replay runs on its own
    clock, so byte-identity is the wrong equivalence.
    """
    a = TraceDecoder.from_bytes(a_bytes)
    b = TraceDecoder.from_bytes(b_bytes)
    if a.nprocs != b.nprocs:
        return False
    for rank in range(a.nprocs):
        sa = [a.trace.cst.sigs[t] for t in a.rank_terminals(rank)]
        sb = [b.trace.cst.sigs[t] for t in b.rank_terminals(rank)]
        if sa != sb:
            return False
    return True


def build_rank_programs(decoder: TraceDecoder, *,
                        nprocs: Optional[int] = None,
                        directed: bool = True,
                        strict_ids: bool = True,
                        rank_sources: Optional[list[int]] = None):
    """Construct the replay machinery for one decoded trace.

    Returns ``(state, replayers, program)`` where *program* is the rank
    program to hand :meth:`~repro.mpisim.SimMPI.run`.  This is the one
    entry point both :func:`replay_trace` (directed, fixed-point) and
    :mod:`repro.replay.divergence` (relaxed, what-if) build on.

    ``nprocs`` overrides the replayed world size (rank extrapolation);
    ``rank_sources[r]`` names the recorded rank whose call stream replay
    rank *r* re-issues (default: itself — only meaningful with a
    ``nprocs`` override, where new ranks must borrow a recorded
    stream).
    """
    n = decoder.nprocs if nprocs is None else nprocs
    if n <= 0:
        raise ReplayFormatError(f"cannot replay on {n} ranks")
    if rank_sources is None:
        if n > decoder.nprocs:
            raise ReplayFormatError(
                f"replay on {n} ranks needs rank_sources: the trace only "
                f"records {decoder.nprocs}")
        rank_sources = list(range(n))
    elif len(rank_sources) != n:
        raise ReplayFormatError(
            f"rank_sources covers {len(rank_sources)} ranks, world is {n}")
    state = ReplayState(n)
    replayers = [
        RankReplayer(r, state,
                     (lambda rr=rank_sources[r]: decoder.rank_calls(rr)),
                     directed=directed, strict_ids=strict_ids)
        for r in range(n)
    ]

    def program(m):
        yield from replayers[m.rank].program(m)

    return state, replayers, program


def run_replay(sim: SimMPI, program):
    """Drive a replay program, routing malformed-trace failures into the
    :class:`~repro.core.errors.ReplayFormatError` hierarchy.

    A fuzzed-but-parseable trace can make the replay interpreter raise a
    bare simulator error (unknown handle, mismatched collective, a
    deadlock from a half-recorded exchange) or trip an internal
    assertion; the replayer's contract is the decoder's — structured
    errors only, never a crash.
    """
    try:
        return sim.run(program)
    except TraceFormatError:
        raise
    except RankProgramError as e:
        if isinstance(e.original, TraceFormatError):
            raise ReplayFormatError(
                f"rank {e.rank}: {e.original}") from e
        raise ReplayFormatError(
            f"trace is not replayable: rank {e.rank} raised "
            f"{type(e.original).__name__}: {e.original}") from e
    except (MpiSimError, AssertionError, KeyError, IndexError,
            TypeError, AttributeError) as e:
        raise ReplayFormatError(
            f"trace is not replayable: {type(e).__name__}: {e}") from e


def replay_trace(trace_bytes: bytes, *, seed: int = 0,
                 tracer=None, noise: float = 0.0):
    """Replay a Pilgrim trace on a fresh simulated world.

    Returns the :class:`~repro.mpisim.RunResult`; pass a tracer to
    re-trace the replay (the fixed-point check).
    """
    decoder = TraceDecoder.from_bytes(trace_bytes)
    _state, _replayers, program = build_rank_programs(decoder)
    sim = SimMPI(decoder.nprocs, seed=seed, tracer=tracer, noise=noise)
    return run_replay(sim, program)
