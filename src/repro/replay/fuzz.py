"""Corruption fuzzing for the *replay* entry point.

The decoder fuzzer (:mod:`repro.core.fuzz`) proves parsing never
crashes; this module extends the same contract one layer up: a mutated
trace fed to :func:`~repro.replay.engine.replay_trace` must either

* raise a structured :class:`~repro.core.errors.TraceFormatError`
  (usually at decode, sometimes mid-replay as a
  :class:`~repro.core.errors.ReplayFormatError` — e.g. a
  checksum-surviving ``nprocs`` edit that leaves the call stream
  re-executable-looking but inconsistent), or
* replay cleanly (the mutation landed somewhere replay never reads —
  fine: the *decode* fuzzer separately polices silent decodes).

Anything else — a bare simulator error, an assertion, a deadlock
leaking out raw — is a replayer bug, reported as a CRASH failure.
Same mutation corpus as the decoder fuzzer, so coverage composes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain

from ..core.errors import TraceFormatError
from ..core.fuzz import (CRASH, FuzzOutcome, FuzzReport, corpus_mutations,
                         iter_mutations)
from .engine import replay_trace

#: outcome kind: the mutation did not affect replayability
CLEAN = "clean"


@dataclass
class ReplayFuzzReport(FuzzReport):
    """Decoder-fuzz report plus a counter for clean replays (mutations
    the replay path legitimately never observes)."""

    clean: int = 0

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        errs = ", ".join(f"{k}×{v}"
                         for k, v in sorted(self.by_error.items()))
        return (f"replay fuzz: {status} ({self.total} mutations, "
                f"{self.structured} structured errors, "
                f"{self.clean} replayed clean, "
                f"{len(self.failures)} failures; {errs})")


def run_replay_fuzz(blob: bytes, seed: int = 0,
                    n_random: int = 200) -> ReplayFuzzReport:
    """Replay every mutation of *blob*; classify the outcomes.

    ``report.ok`` iff no mutation crashed the replayer with anything
    outside the :class:`TraceFormatError` hierarchy.
    """
    report = ReplayFuzzReport()
    for desc, mut in chain(iter_mutations(blob, seed=seed,
                                          n_random=n_random),
                           corpus_mutations(blob)):
        if mut == blob:
            continue
        report.total += 1
        try:
            replay_trace(mut)
        except TraceFormatError as e:
            report.structured += 1
            name = type(e).__name__
            report.by_error[name] = report.by_error.get(name, 0) + 1
        except Exception as e:  # noqa: BLE001 — the whole point
            report.failures.append(FuzzOutcome(
                desc, CRASH, f"{type(e).__name__}: {e}"))
            name = type(e).__name__
            report.by_error[name] = report.by_error.get(name, 0) + 1
        else:
            report.clean += 1
    return report
