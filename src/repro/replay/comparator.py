"""Lockstep comparison of a replayed call stream against its record.

The comparator is a :class:`~repro.mpisim.hooks.TracerHooks` — it rides
the replay simulator exactly where a tracer would, so *every* re-issued
MPI call flows through :meth:`LockstepComparator.on_call` with its live
arguments and virtual entry/exit times.  Each rank keeps a cursor into
the recorded (decoded) call stream and checks, call by call:

* the function name matches the record;
* the observable *outcomes* match — Waitany/Testany indices,
  Waitsome/Testsome index sets, Test* flags, and wildcard completion
  sources (decoded from the record's relative-rank encoding);
* the timing delta (live virtual duration minus the recorded per-call
  average) — reported, never itself a divergence, because a replay runs
  on its own clock.

The first mismatch per rank becomes a :class:`DivergencePoint`; the
rank's cursor then stops checking (everything downstream of a divergence
is noise) but keeps counting, so the report's conservation identity
holds on every rank::

    matched + skipped + mismatched + unchecked == recorded

``skipped`` counts recorded calls the engine deliberately does not
re-issue (``MPI_Get_count`` and friends — local queries with no
communication side effects), mirroring the salvage report's
call-deficit accounting: every recorded call is accounted for exactly
once.

Caveat: completion-source comparison decodes ``MARK_REL`` sources
against the caller's *world* rank, so it is skipped for calls recorded
on subcommunicators (where the context rank differs); function-name and
index/flag divergence detection is communicator-agnostic and still
applies there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.records import DecodedCall
from ..core.relative import MARK_REL, decode as rel_decode
from ..mpisim.hooks import TracerHooks

#: schema tag stamped on divergence-report JSON documents
DIVERGENCE_SCHEMA = "repro.divergence/v1"

#: recorded calls the engine re-issues nothing for (local queries whose
#: outputs bind no replay state; see ``engine._replay_query``)
NOT_REISSUED = frozenset((
    "MPI_Get_count", "MPI_Request_get_status", "MPI_Comm_compare",
    "MPI_Group_compare", "MPI_Group_translate_ranks",
))

#: JSON schema for ``DivergenceReport.as_dict()`` (the ``--json`` form)
DIVERGENCE_REPORT_SCHEMA: dict = {
    "type": "object",
    "required": ["schema", "nprocs", "diverged", "counts", "points"],
    "properties": {
        "schema": {"type": "string"},
        "nprocs": {"type": "integer"},
        "recorded_nprocs": {"type": "integer"},
        "diverged": {"type": "boolean"},
        "counts": {
            "type": "object",
            "required": ["recorded", "replayed", "matched", "skipped",
                         "mismatched", "unchecked", "extra"],
            "properties": {
                "recorded": {"type": "integer"},
                "replayed": {"type": "integer"},
                "matched": {"type": "integer"},
                "skipped": {"type": "integer"},
                "mismatched": {"type": "integer"},
                "unchecked": {"type": "integer"},
                "extra": {"type": "integer"},
            },
        },
        "points": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["rank", "call_index", "field"],
                "properties": {
                    "rank": {"type": "integer"},
                    "call_index": {"type": "integer"},
                    "function": {"type": "string"},
                    "recorded_function": {"type": "string"},
                    "field": {"type": "string"},
                    "recorded": {},
                    "live": {},
                    "timing_delta_s": {"type": "number"},
                },
            },
        },
        "timing": {
            "type": "object",
            "properties": {
                "abs_delta_s": {"type": "number"},
                "max_delta_s": {"type": "number"},
            },
        },
    },
}


@dataclass(frozen=True)
class DivergencePoint:
    """The first call on one rank whose outcome left the record."""

    rank: int
    #: index into the rank's *recorded* call stream (0-based, counting
    #: every recorded call including MPI_Init)
    call_index: int
    #: the function the replay issued ("" when the replay ended early)
    function: str
    #: the function the record expected ("" when the replay ran past it)
    recorded_function: str
    #: which observable differed: "function", "index", "flag",
    #: "array_of_indices", "outcount", "status.source", or "stream"
    field: str
    recorded: Any = None
    live: Any = None
    #: live virtual duration minus the recorded per-call average at the
    #: divergence point (diagnostic; timing never *causes* divergence)
    timing_delta_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "rank": self.rank, "call_index": self.call_index,
            "function": self.function,
            "recorded_function": self.recorded_function,
            "field": self.field,
            "recorded": _json_val(self.recorded),
            "live": _json_val(self.live),
            "timing_delta_s": round(self.timing_delta_s, 9),
        }

    def describe(self) -> str:
        what = (f"{self.field}: recorded {_json_val(self.recorded)!r}, "
                f"replayed {_json_val(self.live)!r}"
                if self.field not in ("function", "stream")
                else f"recorded {self.recorded_function or '<end>'}, "
                     f"replayed {self.function or '<end>'}")
        return (f"rank {self.rank} call #{self.call_index} "
                f"({self.recorded_function or self.function}): {what}")


def _json_val(v: Any) -> Any:
    """Flatten a compared value into a JSON-clean form."""
    if isinstance(v, (list, tuple)):
        return [_json_val(x) for x in v]
    if v is None or isinstance(v, (bool, int, float, str)):
        return v
    return repr(v)


@dataclass
class _RankCursor:
    """One rank's walk through its recorded stream."""

    recorded: list
    ptr: int = 0
    replayed: int = 0
    matched: int = 0
    skipped: int = 0
    point: Optional[DivergencePoint] = None
    extra: int = 0
    #: running |live - recorded| duration deltas (seconds)
    timing_abs: float = 0.0
    timing_max: float = 0.0


class LockstepComparator(TracerHooks):
    """Attach as the replay :class:`~repro.mpisim.SimMPI`'s tracer; call
    :meth:`finish` after the run for the :class:`DivergenceReport`.

    ``rank_sources`` maps each replay rank to the recorded rank whose
    stream it is held against (rank extrapolation replays borrowed
    streams); default is the identity.
    """

    def __init__(self, decoder, *, nprocs: Optional[int] = None,
                 rank_sources: Optional[list[int]] = None):
        n = decoder.nprocs if nprocs is None else nprocs
        if rank_sources is None:
            rank_sources = list(range(n))
        #: recorded streams are materialized once per *source* rank and
        #: shared by every cursor comparing against them
        streams: dict[int, list[DecodedCall]] = {}
        for src in rank_sources:
            if src not in streams:
                streams[src] = list(decoder.rank_calls(src))
        self.recorded_nprocs = decoder.nprocs
        self.nprocs = n
        self._cursors = [_RankCursor(recorded=streams[rank_sources[r]])
                         for r in range(n)]

    # -- the hook ----------------------------------------------------------------

    def on_call(self, rank: int, fname: str, args: dict[str, Any],
                t0: float, t1: float) -> None:
        cur = self._cursors[rank]
        cur.replayed += 1
        if cur.point is not None:
            return  # already diverged: count, don't compare
        rec = self._advance(cur, fname)
        if rec is None:
            cur.extra += 1
            cur.point = DivergencePoint(
                rank=rank, call_index=len(cur.recorded), function=fname,
                recorded_function="", field="stream", live=fname)
            return
        if rec.fname != fname:
            cur.point = DivergencePoint(
                rank=rank, call_index=cur.ptr, function=fname,
                recorded_function=rec.fname, field="function",
                recorded=rec.fname, live=fname,
                timing_delta_s=(t1 - t0) - rec.avg_duration)
            cur.ptr += 1
            return
        delta = (t1 - t0) - rec.avg_duration
        cur.timing_abs += abs(delta)
        cur.timing_max = max(cur.timing_max, abs(delta))
        mismatch = self._compare_outcome(rank, rec, args)
        if mismatch is not None:
            field_name, rec_v, live_v = mismatch
            cur.point = DivergencePoint(
                rank=rank, call_index=cur.ptr, function=fname,
                recorded_function=rec.fname, field=field_name,
                recorded=rec_v, live=live_v, timing_delta_s=delta)
        else:
            cur.matched += 1
        cur.ptr += 1

    def _advance(self, cur: _RankCursor, fname: str):
        """Skip recorded entries the engine never re-issues (unless the
        live call happens to be exactly that entry); returns the record
        to compare against, or None past the end of the stream."""
        rec_list = cur.recorded
        while cur.ptr < len(rec_list):
            rec = rec_list[cur.ptr]
            if rec.fname in NOT_REISSUED and rec.fname != fname:
                cur.skipped += 1
                cur.ptr += 1
                continue
            return rec
        return None

    # -- outcome comparison ------------------------------------------------------

    def _compare_outcome(self, rank: int, rec: DecodedCall,
                         args: dict[str, Any]):
        p = rec.params
        # completion picks: Waitany/Testany index
        rec_idx = p.get("index")
        if isinstance(rec_idx, int) and "index" in args \
                and isinstance(args["index"], int) \
                and args["index"] != rec_idx:
            return "index", rec_idx, args["index"]
        # Waitsome/Testsome index sets
        rec_idxs = p.get("array_of_indices")
        live_idxs = args.get("array_of_indices")
        if rec_idxs is not None or live_idxs is not None:
            a = list(rec_idxs) if rec_idxs is not None else None
            b = list(live_idxs) if live_idxs is not None else None
            if a != b:
                return "array_of_indices", a, b
        rec_out = p.get("outcount")
        if isinstance(rec_out, int) and isinstance(args.get("outcount"),
                                                   int) \
                and args["outcount"] != rec_out:
            return "outcount", rec_out, args["outcount"]
        # Test* flags
        rec_flag = p.get("flag")
        if rec_flag is not None and "flag" in args \
                and args["flag"] is not None \
                and int(bool(args["flag"])) != int(bool(rec_flag)):
            return "flag", int(bool(rec_flag)), int(bool(args["flag"]))
        # completion source (wildcard matching)
        src = self._recorded_source(rank, rec)
        if src is not None:
            live_st = args.get("status")
            live_src = getattr(live_st, "MPI_SOURCE", None)
            if isinstance(live_src, int) and live_src >= 0 \
                    and live_src != src:
                return "status.source", src, live_src
        return None

    def _recorded_source(self, rank: int, rec: DecodedCall) -> Optional[int]:
        """The recorded completion source as a world rank, or None when
        it cannot be decoded safely (non-world communicator with a
        relative encoding, no status recorded)."""
        st = rec.params.get("status")
        if not (isinstance(st, tuple) and len(st) == 2):
            return None
        enc = st[0]
        if isinstance(enc, int):
            return enc if enc >= 0 else None
        if not (isinstance(enc, tuple) and len(enc) == 2):
            return None
        if enc[0] == MARK_REL and rec.params.get("comm", 0) != 0:
            return None  # context rank unknown off-world
        val = rel_decode(enc, rank)
        return val if val >= 0 else None

    # -- the report --------------------------------------------------------------

    def finish(self) -> "DivergenceReport":
        points: list[DivergencePoint] = []
        counts = {"recorded": 0, "replayed": 0, "matched": 0,
                  "skipped": 0, "mismatched": 0, "unchecked": 0,
                  "extra": 0}
        per_rank: list[dict] = []
        timing_abs = 0.0
        timing_max = 0.0
        for rank, cur in enumerate(self._cursors):
            # trailing recorded queries the replay legitimately skipped
            if cur.point is None:
                while cur.ptr < len(cur.recorded) \
                        and cur.recorded[cur.ptr].fname in NOT_REISSUED:
                    cur.skipped += 1
                    cur.ptr += 1
            unchecked = len(cur.recorded) - cur.ptr
            if cur.point is None and unchecked > 0:
                # the replay ended before the record did
                rec = cur.recorded[cur.ptr]
                cur.point = DivergencePoint(
                    rank=rank, call_index=cur.ptr, function="",
                    recorded_function=rec.fname, field="stream",
                    recorded=rec.fname)
            mismatched = 1 if (cur.point is not None
                               and cur.point.field != "stream") else 0
            if cur.point is not None and cur.point.field != "stream":
                unchecked = len(cur.recorded) - cur.ptr
            if cur.point is not None:
                points.append(cur.point)
            counts["recorded"] += len(cur.recorded)
            counts["replayed"] += cur.replayed
            counts["matched"] += cur.matched
            counts["skipped"] += cur.skipped
            counts["mismatched"] += mismatched
            counts["unchecked"] += unchecked
            counts["extra"] += cur.extra
            timing_abs += cur.timing_abs
            timing_max = max(timing_max, cur.timing_max)
            per_rank.append({
                "rank": rank, "recorded": len(cur.recorded),
                "replayed": cur.replayed, "matched": cur.matched,
                "skipped": cur.skipped, "mismatched": mismatched,
                "unchecked": unchecked, "extra": cur.extra,
            })
        points.sort(key=lambda pt: pt.rank)
        return DivergenceReport(
            nprocs=self.nprocs, recorded_nprocs=self.recorded_nprocs,
            points=points, counts=counts, per_rank=per_rank,
            timing_abs_delta_s=timing_abs, timing_max_delta_s=timing_max)


@dataclass
class DivergenceReport:
    """What a what-if replay observed, with conserving call accounting.

    ``points`` holds at most one entry per rank — the *first* call whose
    outcome left the record.  ``counts`` satisfies, summed over ranks::

        matched + skipped + mismatched + unchecked == recorded
    """

    nprocs: int
    recorded_nprocs: int
    points: list[DivergencePoint] = field(default_factory=list)
    counts: dict = field(default_factory=dict)
    per_rank: list = field(default_factory=list)
    timing_abs_delta_s: float = 0.0
    timing_max_delta_s: float = 0.0

    @property
    def diverged(self) -> bool:
        return bool(self.points)

    @property
    def first(self) -> Optional[DivergencePoint]:
        """The earliest divergence across ranks (lowest call index,
        ties broken by rank), or None."""
        if not self.points:
            return None
        return min(self.points, key=lambda pt: (pt.call_index, pt.rank))

    def conserved(self) -> bool:
        """Does the call accounting balance (the salvage-style check)?"""
        c = self.counts
        return (c.get("matched", 0) + c.get("skipped", 0)
                + c.get("mismatched", 0) + c.get("unchecked", 0)
                == c.get("recorded", 0))

    def as_dict(self) -> dict:
        return {
            "schema": DIVERGENCE_SCHEMA,
            "nprocs": self.nprocs,
            "recorded_nprocs": self.recorded_nprocs,
            "diverged": self.diverged,
            "counts": dict(self.counts),
            "points": [pt.as_dict() for pt in self.points],
            "per_rank": list(self.per_rank),
            "timing": {
                "abs_delta_s": round(self.timing_abs_delta_s, 9),
                "max_delta_s": round(self.timing_max_delta_s, 9),
            },
        }

    def summary(self) -> str:
        c = self.counts
        if not self.diverged:
            return (f"replay matched the record: {c.get('matched', 0)} "
                    f"calls on {self.nprocs} ranks, zero divergences")
        head = self.first
        return (f"replay DIVERGED on {len(self.points)}/{self.nprocs} "
                f"ranks (first: {head.describe()}); "
                f"{c.get('matched', 0)} matched, "
                f"{c.get('unchecked', 0)} unchecked after divergence")
