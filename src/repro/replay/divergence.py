"""What-if re-execution: replay a trace under *modified* conditions.

:func:`replay_trace` proves the fixed point — a directed replay under
recorded conditions re-issues exactly the recorded stream.  This module
answers the next question: *what changes when conditions change?*  Three
perturbation axes, composable:

* **network** — alternative alpha–beta parameters for the
  :class:`~repro.mpisim.netmodel.NetworkModel` (``--net alpha=..,beta=..``);
* **faults** — a seeded :class:`~repro.resilience.faults.FaultPlan`
  whose scheduler sites (``delay@sched``, ``drop@sched``) perturb rank
  interleaving during the replay;
* **scale** — rank-count extrapolation: a single-grammar-class trace
  (every rank compressed to the same call pattern — pure SPMD) is
  *stretched* to a different world size by replaying the recorded
  pattern on every new rank, with relative-rank encodings re-decoded
  against the new rank numbers.

Any perturbation switches the engine to **relaxed** replay: the live
simulator makes its own Wait-family completion picks and wildcard
matches (Test* outcomes stay directed so call counts are conserved and
empty polls cannot livelock).  A :class:`LockstepComparator` rides the
run as its tracer and reports the first call per rank whose observable
outcome left the record — the :class:`DivergenceReport`.

Unchanged conditions keep the replay fully **directed**, so identical-
conditions divergence runs are the fixed-point check in report form:
zero divergences, by construction.

Phases are span-instrumented (``ReplayOptions(spans=True)``) so ``repro
stats --spans`` can show where a replay spends its time: ``decode`` →
``build`` → ``execute`` → ``compare``.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass, field, fields as _dc_fields
from typing import Any, Optional, Union

from ..core.decoder import TraceDecoder
from ..core.errors import ReplayFormatError
from ..mpisim.netmodel import NetworkModel
from ..mpisim.runtime import SimMPI
from ..obs.spans import NULL_RECORDER, SpanRecorder
from ..resilience.faults import FaultInjector, FaultPlan, arm
from .comparator import DivergenceReport, LockstepComparator
from .engine import build_rank_programs, run_replay

#: NetworkModel fields settable through ``net=`` specs
_NET_FIELDS = ("alpha", "beta", "overhead")


class ExtrapolationError(ReplayFormatError):
    """The trace cannot be stretched to the requested rank count: its
    ranks do not all share one grammar class (the call pattern differs
    across ranks, so there is no single pattern to replicate), or the
    target world size is invalid."""


def parse_net(spec: Union[None, str, dict, NetworkModel]) -> Optional[NetworkModel]:
    """Normalize a network override into a :class:`NetworkModel`.

    Accepts the model itself, a dict of field overrides, or the CLI's
    compact string form ``"alpha=1.5e-6,beta=3e-10"``.  None means
    "recorded conditions" (the simulator default).  Unknown fields and
    non-positive values raise ``ValueError`` eagerly.
    """
    if spec is None or isinstance(spec, NetworkModel):
        return spec
    if isinstance(spec, str):
        parsed: dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, val = part.partition("=")
            if not sep:
                raise ValueError(
                    f"bad net spec {part!r}: expected name=value")
            parsed[key.strip()] = val.strip()
        spec = parsed
    if not isinstance(spec, dict):
        raise ValueError(
            f"net must be a NetworkModel, dict, or 'alpha=..,beta=..' "
            f"string, got {type(spec).__name__}")
    unknown = sorted(set(spec) - set(_NET_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown network parameter(s) {unknown}; "
            f"valid: {list(_NET_FIELDS)}")
    kwargs: dict[str, float] = {}
    for key, val in spec.items():
        try:
            num = float(val)
        except (TypeError, ValueError):
            raise ValueError(f"network parameter {key}={val!r} is not "
                             f"a number") from None
        if num < 0:
            raise ValueError(f"network parameter {key} must be >= 0, "
                             f"got {num}")
        kwargs[key] = num
    return NetworkModel(**kwargs)


@dataclass(frozen=True)
class ReplayOptions:
    """Everything a what-if replay can vary, validated eagerly.

    The default object means "recorded conditions": fully directed
    replay, guaranteed zero divergences.  Setting any of ``net``,
    ``fault_plan``, or ``extrapolate_ranks`` switches to relaxed
    (what-if) replay.

    ``net`` and ``fault_plan`` accept their string forms
    (``"alpha=..,beta=.."``; a :meth:`FaultPlan.parse` spec) and are
    normalized at construction, so a bad spec fails at options-building
    time, not mid-replay.
    """

    #: master seed for the replay simulator (completion-order RNG,
    #: compute noise); same seed + same options => bit-identical report
    seed: int = 0
    #: relative std-dev of compute-time noise during the replay
    noise: float = 0.0
    #: alternative alpha-beta parameters (None = simulator default)
    net: Union[None, str, dict, NetworkModel] = None
    #: seeded fault plan perturbing the replay (str | FaultPlan |
    #: pre-armed FaultInjector)
    fault_plan: Any = None
    #: seed for parsing a string fault plan (site selection)
    fault_seed: int = 0
    #: replay on this many ranks instead of the recorded count
    #: (requires a single-grammar-class trace)
    extrapolate_ranks: Optional[int] = None
    #: ranks per simulated node in the replay world
    node_size: int = 16
    #: record phase spans (``ReplayResult.spans`` / ``write_spans``)
    spans: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        if not isinstance(self.noise, (int, float)) or self.noise < 0:
            raise ValueError(f"noise must be a non-negative number, "
                             f"got {self.noise!r}")
        if self.node_size <= 0:
            raise ValueError(f"node_size must be positive, "
                             f"got {self.node_size}")
        if self.extrapolate_ranks is not None and (
                not isinstance(self.extrapolate_ranks, int)
                or isinstance(self.extrapolate_ranks, bool)
                or self.extrapolate_ranks <= 0):
            raise ValueError(
                f"extrapolate_ranks must be a positive int or None, "
                f"got {self.extrapolate_ranks!r}")
        # normalize string/dict specs now so bad ones fail eagerly
        object.__setattr__(self, "net", parse_net(self.net))
        if isinstance(self.fault_plan, str):
            object.__setattr__(
                self, "fault_plan",
                FaultPlan.parse(self.fault_plan, seed=self.fault_seed))

    @property
    def what_if(self) -> bool:
        """True when any perturbation is requested (=> relaxed replay)."""
        return (self.net is not None or self.fault_plan is not None
                or self.extrapolate_ranks is not None)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able snapshot (for manifests and report headers)."""
        out: dict[str, Any] = {}
        for f in _dc_fields(self):
            val = getattr(self, f.name)
            if isinstance(val, NetworkModel):
                val = {k: getattr(val, k) for k in _NET_FIELDS}
            elif isinstance(val, (FaultPlan, FaultInjector)):
                val = str(getattr(val, "plan", val))
            out[f.name] = val
        return out


@dataclass
class ReplayResult:
    """What :func:`run_divergence` (and ``api.replay``) returns."""

    #: the fully resolved options the replay ran with
    options: ReplayOptions
    #: the lockstep comparator's verdict
    report: DivergenceReport
    #: the simulator's RunResult (virtual times, scheduler steps)
    run: Any
    #: replayed world size (== recorded unless extrapolating)
    nprocs: int
    #: world size the trace was recorded on
    recorded_nprocs: int
    #: the armed fault injector (None when no plan was given)
    injector: Optional[FaultInjector] = None
    #: wall/CPU seconds of decode+build+execute+compare
    wall_s: float = 0.0
    cpu_s: float = 0.0
    #: exported phase spans (empty unless ``ReplayOptions(spans=True)``)
    spans: list = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return self.report.diverged

    @property
    def first(self):
        """The earliest :class:`DivergencePoint` across ranks, or None."""
        return self.report.first

    @property
    def fired_faults(self) -> list:
        """Human-readable log of every fault that actually fired."""
        return list(self.injector.fired) if self.injector is not None \
            else []

    def summary(self) -> str:
        return self.report.summary()

    def report_dict(self) -> dict:
        """The report document (``--json`` form), with the options and
        fired faults stamped in — deterministic for a given seed."""
        doc = self.report.as_dict()
        doc["options"] = self.options.as_dict()
        doc["fired_faults"] = self.fired_faults
        return doc

    def write_report(self, path: Union[str, os.PathLike]) -> int:
        """Write the divergence report as canonical JSON (sorted keys,
        trailing newline); returns the byte count.  Same trace + same
        options => byte-identical file."""
        import json
        text = json.dumps(self.report_dict(), indent=2, sort_keys=True) \
            + "\n"
        data = text.encode()
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)

    def write_spans(self, path: Union[str, os.PathLike]) -> int:
        """Dump the replay's phase spans as JSONL (what ``repro stats
        --spans`` reads); returns the line count."""
        from ..obs import write_spans_jsonl
        if not self.spans:
            raise ValueError(
                "no spans recorded — replay with ReplayOptions(spans=True)")
        return write_spans_jsonl(str(path), self.spans,
                                 meta={"command": "replay",
                                       "nprocs": self.nprocs})

    def manifest(self, *, command: str = "replay",
                 outputs: Optional[dict] = None) -> Any:
        """Build the :class:`~repro.obs.RunManifest` describing this
        replay (the ``TraceResult.manifest`` idiom)."""
        from ..obs import (RunManifest, git_describe, host_environment,
                           peak_rss_kb)
        c = self.report.counts
        totals = {"calls_recorded": c.get("recorded", 0),
                  "calls_replayed": c.get("replayed", 0),
                  "calls_matched": c.get("matched", 0),
                  "divergences": len(self.report.points),
                  "spans": len(self.spans)}
        return RunManifest(
            command=command,
            workload="(replayed trace)",
            nprocs=self.nprocs,
            seed=self.options.seed,
            options=self.options.as_dict(),
            git=git_describe(), environment=host_environment(),
            wall_s=round(self.wall_s, 6), cpu_s=round(self.cpu_s, 6),
            peak_rss_kb=peak_rss_kb(),
            totals=totals, outputs=dict(outputs or {}),
            degraded=False,
            fired_faults=self.fired_faults)


def _extrapolation_sources(decoder: TraceDecoder, n: int) -> list[int]:
    """Rank-stream assignment for a stretched world, or raise.

    Stretching replicates *the* recorded call pattern onto every new
    rank, re-decoding relative-rank encodings against the new rank
    numbers — well-defined only when every recorded rank compressed to
    the same grammar class (pure SPMD; typically collective-dominated
    traces).  Multi-class traces have no principled per-rank pattern
    assignment at a different world size, so they are refused loudly.
    """
    cfg = decoder.trace.cfg
    classes = len(cfg.unique)
    if classes != 1:
        raise ExtrapolationError(
            f"cannot extrapolate to {n} ranks: the trace has {classes} "
            f"distinct per-rank call patterns (extrapolation requires "
            f"exactly 1 — a pure SPMD trace)")
    return [0] * n


def run_divergence(trace: Union[bytes, TraceDecoder],
                   options: Optional[ReplayOptions] = None) -> ReplayResult:
    """Replay *trace* under ``options`` with the lockstep comparator
    attached; returns a :class:`ReplayResult`.

    Identical conditions (the default options) run fully directed and
    report zero divergences; any perturbation runs relaxed and reports
    the first call per rank whose outcome left the record.  Malformed
    traces raise structured errors
    (:class:`~repro.core.errors.TraceFormatError` /
    :class:`~repro.core.errors.ReplayFormatError`), never simulator
    internals.
    """
    opts = options if options is not None else ReplayOptions()
    recorder = SpanRecorder() if opts.spans else NULL_RECORDER
    w0, c0 = _time.perf_counter(), _time.process_time()
    with recorder.span("replay", scope="replay",
                       what_if=opts.what_if):
        with recorder.span("decode", scope="replay"):
            decoder = trace if isinstance(trace, TraceDecoder) \
                else TraceDecoder.from_bytes(trace)
        recorded_n = decoder.nprocs
        n = recorded_n if opts.extrapolate_ranks is None \
            else opts.extrapolate_ranks
        with recorder.span("build", scope="replay", nprocs=n):
            rank_sources = None
            strict_ids = True
            if n != recorded_n:
                rank_sources = _extrapolation_sources(decoder, n)
                # a different world size derives different comm/win ids
                # than were recorded, by design
                strict_ids = False
            directed = not opts.what_if
            comparator = LockstepComparator(decoder, nprocs=n,
                                            rank_sources=rank_sources)
            _state, _replayers, program = build_rank_programs(
                decoder, nprocs=n, directed=directed,
                strict_ids=strict_ids, rank_sources=rank_sources)
            injector = arm(opts.fault_plan)
            sim = SimMPI(n, seed=opts.seed, tracer=comparator,
                         noise=opts.noise, net=opts.net,
                         node_size=opts.node_size, faults=injector)
        with recorder.span("execute", scope="replay",
                           directed=directed):
            run = run_replay(sim, program)
        with recorder.span("compare", scope="replay"):
            report = comparator.finish()
    return ReplayResult(
        options=opts, report=report, run=run, nprocs=n,
        recorded_nprocs=recorded_n, injector=injector,
        wall_s=_time.perf_counter() - w0,
        cpu_s=_time.process_time() - c0,
        spans=recorder.export() if opts.spans else [])
