#!/usr/bin/env python3
"""Compare Pilgrim against the ScalaTrace baseline across the NAS
Parallel Benchmarks — a command-line rendition of the paper's Fig 5.

    python examples/npb_compare.py [--procs 8 16 32] [--codes npb_lu npb_mg]
"""

import argparse

from repro.analysis import classify_growth, fmt_kb, print_table, run_experiment

DEFAULT_CODES = ("npb_lu", "npb_mg", "npb_is", "npb_cg")
SQUARE_CODES = {"npb_sp", "npb_bt"}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--procs", type=int, nargs="+", default=[8, 16, 32, 64])
    ap.add_argument("--codes", nargs="+", default=list(DEFAULT_CODES))
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    for code in args.codes:
        procs = args.procs
        if code in SQUARE_CODES:
            procs = [p * p for p in (4, 6, 8) if p * p <= max(args.procs) * 2]
        rows = [run_experiment(code, P, seed=args.seed, baseline=False)
                for P in procs]
        print_table(
            f"{code}: trace size vs processes",
            ["procs", "MPI calls", "ScalaTrace", "Pilgrim", "ratio",
             "uniq grammars"],
            [(r.nprocs, r.mpi_calls, fmt_kb(r.scalatrace_size),
              fmt_kb(r.pilgrim_size),
              f"{r.scalatrace_size / max(r.pilgrim_size, 1):.1f}x",
              r.n_unique_grammars) for r in rows])
        xs = [r.nprocs for r in rows]
        print(f"  growth: ScalaTrace "
              f"{classify_growth(xs, [r.scalatrace_size for r in rows])}, "
              f"Pilgrim "
              f"{classify_growth(xs, [r.pilgrim_size for r in rows])}")


if __name__ == "__main__":
    main()
