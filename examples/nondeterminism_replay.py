#!/usr/bin/env python3
"""The paper's introduction example, end to end.

A loop drives a request array with MPI_Testsome until every request
finishes.  Message completion order is non-deterministic, so two runs
(different seeds) behave differently — and a tracer that drops Testsome
(like ScalaTrace or Cypress, Table 1) cannot tell them apart, while a
Pilgrim trace replays the exact completion order of each run.

    python examples/nondeterminism_replay.py
"""

from repro.core import PilgrimTracer, TraceDecoder
from repro.mpisim import SimMPI, datatypes as dt
from repro.scalatrace import ScalaTraceTracer

INCOUNT = 6


def program(m):
    """Both ranks: post INCOUNT irecvs, stream sends, Testsome-drain."""
    peer = 1 - m.rank
    buf = m.malloc(4096)
    requests = [m.irecv(buf, 16, dt.DOUBLE, source=peer, tag=t)
                for t in range(INCOUNT)]
    for t in range(INCOUNT):
        yield from m.send(buf + 2048, 16, dt.DOUBLE, dest=peer, tag=t)
    finished = 0
    while finished < INCOUNT:
        indices, statuses = yield from m.testsome(requests)
        finished += len(indices)


def completion_order_from_trace(blob: bytes, rank: int = 0) -> list[int]:
    """Recover the actual completion order from a Pilgrim trace."""
    order = []
    for call in TraceDecoder.from_bytes(blob).rank_calls(rank):
        if call.fname == "MPI_Testsome":
            idxs = call.params["array_of_indices"]
            if idxs:
                order.extend(idxs)
    return order


def main():
    orders = {}
    for seed in (1, 2, 3):
        tracer = PilgrimTracer()
        SimMPI(2, seed=seed, tracer=tracer).run(program)
        orders[seed] = completion_order_from_trace(
            tracer.result.trace_bytes)
        print(f"seed {seed}: completion order recovered from the trace: "
              f"{orders[seed]}")
    assert len({tuple(o) for o in orders.values()}) > 1, \
        "expected different completion orders across seeds"
    print("\n-> different runs completed in different orders, and each "
          "Pilgrim trace preserves its run's order exactly.")

    st = ScalaTraceTracer()
    SimMPI(2, seed=1, tracer=st).run(program)
    print(f"\nScalaTrace on the same run: saw {st.result.total_calls} "
          f"calls, recorded {st.result.recorded_calls} "
          f"(every MPI_Testsome dropped — the completion order is gone).")


if __name__ == "__main__":
    main()
