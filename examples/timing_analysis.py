#!/usr/bin/env python3
"""Non-aggregated (lossy) timing: compress, decode, reconstruct, and
check the error bound (paper §3.2 / §4.4).

Runs MILC with the lossy timing mode (b = 1.2, i.e. at most 20% relative
error), reconstructs per-call (t_start, t_end) from the decoded duration
and interval grammars, and reports the actual reconstruction error
against ground truth.

    python examples/timing_analysis.py [--procs 16] [--base 1.2]
"""

import argparse

from repro.analysis import fmt_kb, print_table
from repro.core import (PilgrimTracer, TIMING_LOSSY, TraceDecoder,
                        reconstruct_times)
from repro.mpisim import SimMPI
from repro.workloads import make


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--procs", type=int, default=16)
    ap.add_argument("--base", type=float, default=1.2)
    args = ap.parse_args()

    tracer = PilgrimTracer(timing_mode=TIMING_LOSSY, timing_base=args.base)
    # retain ground-truth streams for the error check
    orig_start = tracer.on_run_start

    def patched(sim):
        orig_start(sim)
        for tc in tracer.timing:
            tc.keep_raw = True

    tracer.on_run_start = patched
    wl = make("milc_su3_rmd", args.procs, steps=3, cg_iters=6)
    wl.run(seed=3, tracer=tracer)

    r = tracer.result
    sizes = r.section_sizes()
    print_table(
        f"trace sections (MILC, {args.procs} ranks, b={args.base})",
        ["section", "bytes"],
        [(k, fmt_kb(v)) for k, v in sizes.items()])
    raw = 8 * r.total_calls
    print(f"  raw timing would be 2 x {fmt_kb(raw)} "
          f"(8B per call per stream); compressed "
          f"{fmt_kb(sizes['timing_duration'] + sizes['timing_interval'])}")

    # decode and reconstruct rank 2's timeline
    rank = min(2, args.procs - 1)
    dec = TraceDecoder.from_bytes(r.trace_bytes)
    terms = dec.rank_terminals(rank)
    td, ti = dec.trace.timing_duration, dec.trace.timing_interval
    dbins = td.unique[td.rank_uid[rank]].expand()
    ibins = ti.unique[ti.rank_uid[rank]].expand()
    recon = reconstruct_times(dbins, ibins, terms, base=args.base)

    truth = tracer.timing[rank]
    worst = 0.0
    for (ts, _te), t0 in zip(recon, truth.raw_starts):
        if t0 > 1e-9:
            worst = max(worst, abs(ts - t0) / t0)
    bound = args.base - 1
    print(f"\nrank {rank}: reconstructed {len(recon)} call timestamps")
    print(f"  worst relative t_start error: {worst:.4f} "
          f"(guaranteed bound: {bound:.2f})")
    assert worst <= bound + 1e-9

    print("\nfirst five reconstructed calls of that rank:")
    names = [c.fname for c in dec.rank_calls(rank)]
    for i, ((ts, te), fname) in enumerate(zip(recon, names)):
        print(f"  {fname:<16s} t_start={ts * 1e6:9.2f}us "
              f"dur={(te - ts) * 1e6:7.2f}us")
        if i >= 4:
            break


if __name__ == "__main__":
    main()
