#!/usr/bin/env python3
"""Study how adaptive mesh refinement drives trace growth (paper §4.3).

Reproduces the Fig 6(d-f) analysis interactively: runs the three FLASH
problems over an iteration sweep, shows that only the codes whose
communication pattern *changes over time* keep growing, and attributes
Sedov's slow growth to the drifting min-dt probe by ablating it.

    python examples/flash_amr_study.py [--procs 16]
"""

import argparse

from repro.analysis import fmt_kb, print_table, run_experiment
from repro.core import PilgrimTracer, TraceDecoder
from repro.workloads import MortonTree, make


def iteration_sweep(nprocs: int) -> None:
    iters = (20, 40, 80, 160)
    for code in ("flash_stirturb", "flash_sedov", "flash_cellular"):
        rows = [run_experiment(code, nprocs, iters=i, scalatrace=False,
                               baseline=False) for i in iters]
        print_table(
            f"{code}: Pilgrim trace size vs iterations ({nprocs} ranks)",
            ["iters", "MPI calls", "signatures", "size"],
            [(r.params["iters"], r.mpi_calls, r.n_signatures,
              fmt_kb(r.pilgrim_size)) for r in rows])


def sedov_attribution(nprocs: int) -> None:
    print("\n--- Sedov growth attribution "
          "(the paper: 'the source of that datum changes every few "
          "hundred iterations') ---")
    drifting = [run_experiment("flash_sedov", nprocs, iters=i,
                               scalatrace=False, baseline=False,
                               drift_every=20).pilgrim_size
                for i in (40, 160)]
    fixed = [run_experiment("flash_sedov", nprocs, iters=i,
                            scalatrace=False, baseline=False,
                            drift_every=10 ** 9).pilgrim_size
             for i in (40, 160)]
    print_table(
        "Sedov variants",
        ["variant", "size @40", "size @160", "growth"],
        [("drifting min-dt owner", fmt_kb(drifting[0]), fmt_kb(drifting[1]),
          f"{drifting[1] / drifting[0]:.2f}x"),
         ("fixed owner", fmt_kb(fixed[0]), fmt_kb(fixed[1]),
          f"{fixed[1] / fixed[0]:.2f}x")])


def cellular_tree_growth(nprocs: int) -> None:
    print("\n--- Cellular: the Morton tree behind the growing trace ---")
    tree = MortonTree(base_level=2, seed=7)
    rows = []
    for epoch in range(6):
        rows.append((epoch, tree.n_blocks))
        tree.refine_step()
    print_table("PARAMESH-style refinement", ["epoch", "leaf blocks"], rows)

    tracer = PilgrimTracer()
    make("flash_cellular", nprocs, iters=60).run(seed=1, tracer=tracer)
    decoder = TraceDecoder.from_bytes(tracer.result.trace_bytes)
    hist = decoder.function_histogram()
    print_table(
        f"Cellular trace content ({nprocs} ranks, 60 iterations)",
        ["function", "calls"],
        sorted(hist.items(), key=lambda kv: -kv[1])[:8])
    print(f"  total: {tracer.result.total_calls} calls -> "
          f"{fmt_kb(tracer.result.trace_size)} "
          f"({tracer.result.n_signatures} signatures, "
          f"{tracer.result.n_unique_grammars} unique grammars)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--procs", type=int, default=16)
    args = ap.parse_args()
    iteration_sweep(args.procs)
    sedov_attribution(args.procs)
    cellular_tree_growth(args.procs)


if __name__ == "__main__":
    main()
