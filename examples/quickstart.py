#!/usr/bin/env python3
"""Quickstart: trace an MPI program with Pilgrim and look inside the trace.

Runs a 2D halo-exchange stencil on 16 simulated ranks, compresses the
trace, verifies the lossless round trip, and decodes a few records.

    python examples/quickstart.py
"""

from repro.core import PilgrimTracer, TraceDecoder, verify_roundtrip
from repro.mpisim import SimMPI, constants as C, datatypes as dt, ops


def stencil(m):
    """One simulated rank of a 1D halo exchange + reduction loop."""
    me = m.comm_rank()
    n = m.comm_size()
    left = me - 1 if me > 0 else C.PROC_NULL
    right = me + 1 if me < n - 1 else C.PROC_NULL

    halo = m.malloc(4096)          # intercepted: Pilgrim tracks the segment
    for step in range(100):
        m.compute(5e-6)            # model local work (not an MPI call)
        reqs = [
            m.irecv(halo, 256, dt.DOUBLE, source=left, tag=20001),
            m.irecv(halo + 2048, 256, dt.DOUBLE, source=right, tag=20001),
            m.isend(halo, 256, dt.DOUBLE, dest=left, tag=20001),
            m.isend(halo + 2048, 256, dt.DOUBLE, dest=right, tag=20001),
        ]
        yield from m.waitall(reqs)
        if step % 10 == 0:
            yield from m.allreduce(halo, halo, 1, dt.DOUBLE, ops.MAX,
                                   data=float(me))
    m.free(halo)


def main():
    tracer = PilgrimTracer(keep_raw=True)   # keep_raw enables verification
    sim = SimMPI(nprocs=16, seed=42, tracer=tracer)
    sim.run(stencil)

    r = tracer.result
    print(f"ranks:            {sim.nprocs}")
    print(f"MPI calls traced: {r.total_calls}")
    print(f"call signatures:  {r.n_signatures}")
    print(f"unique grammars:  {r.n_unique_grammars} "
          f"(boundary classes: left edge, right edge, interior)")
    print(f"trace size:       {r.trace_size} bytes "
          f"({r.total_calls * 50 // max(r.trace_size, 1)}x+ vs ~50B/call raw)")
    print(f"sections:         {r.section_sizes()}")

    report = verify_roundtrip(tracer)
    print(f"lossless check:   {'OK' if report.ok else report.mismatches[:3]}")

    # the trace is plain bytes — write it, read it back, decode it
    decoder = TraceDecoder.from_bytes(r.trace_bytes)
    print("\nper-function call counts (from the decoded trace):")
    for fname, count in sorted(decoder.function_histogram().items()):
        print(f"  {fname:<16s} {count}")

    print("\nfirst calls of rank 1, decoded:")
    for i, call in enumerate(decoder.rank_calls(1)):
        print(f"  {call}")
        if i >= 5:
            break

    print("\nrank 1's first Irecv, with relative ranks materialized:")
    irecv = next(c for c in decoder.rank_calls(1) if c.fname == "MPI_Irecv")
    print(f"  encoded:      {irecv.params}")
    print(f"  materialized: {irecv.materialized()}")


if __name__ == "__main__":
    main()
