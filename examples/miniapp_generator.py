#!/usr/bin/env python3
"""Replay a trace and generate a proxy mini-app from it (paper §6).

Traces MILC, replays the trace on a fresh simulated world (completing
non-blocking operations in the recorded order), verifies the replay is a
structural fixed point, then generates a standalone mini-app whose
control flow *is* the trace's compressed grammar — and runs that too.

    python examples/miniapp_generator.py [--out miniapp.py]
"""

import argparse

from repro.core import PilgrimTracer
from repro.mpisim import SimMPI
from repro.replay import (generate_miniapp, load_miniapp, replay_trace,
                          structurally_equal)
from repro.workloads import make


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="", help="write mini-app source here")
    ap.add_argument("--procs", type=int, default=16)
    args = ap.parse_args()

    # 1. trace the original application
    tracer = PilgrimTracer()
    make("milc_su3_rmd", args.procs, steps=2, cg_iters=5).run(
        seed=1, tracer=tracer)
    blob = tracer.result.trace_bytes
    print(f"traced MILC on {args.procs} ranks: "
          f"{tracer.result.total_calls} calls -> {len(blob)} bytes")

    # 2. replay it, re-trace the replay, compare
    retracer = PilgrimTracer()
    result = replay_trace(blob, seed=99, tracer=retracer)
    fixed = structurally_equal(blob, retracer.result.trace_bytes)
    print(f"replayed on a fresh world (seed 99): "
          f"{retracer.result.total_calls} calls, "
          f"virtual makespan {result.app_time * 1e3:.2f} ms")
    print(f"structural fixed point (replay trace == original): {fixed}")
    assert fixed

    # 3. generate the mini-app
    source = generate_miniapp(blob)
    n_loops = source.count("for _ in range(")
    print(f"\ngenerated mini-app: {len(source.splitlines())} lines, "
          f"{n_loops} loops recovered from the grammar")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(source)
        print(f"written to {args.out} — run it with: python {args.out}")

    # 4. run the mini-app and verify it too reproduces the pattern
    ns = load_miniapp(source)
    mini_tracer = PilgrimTracer()
    state = ns["ReplayState"](ns["NPROCS"])
    sim = SimMPI(ns["NPROCS"], seed=5, tracer=mini_tracer)
    state.bind_comm(0, sim.world)
    sim.run(ns["make_program"](state))
    print(f"mini-app fixed point: "
          f"{structurally_equal(blob, mini_tracer.result.trace_bytes)}")

    print("\n--- a taste of the generated control flow ---")
    lines = source.splitlines()
    start = next(i for i, l in enumerate(lines)
                 if l.startswith("def class_0"))
    print("\n".join(lines[start:start + 12]))


if __name__ == "__main__":
    main()
