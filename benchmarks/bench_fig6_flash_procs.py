"""Fig 6 (a–c) — FLASH trace size vs process count, plus total MPI calls.

Paper-scale: 64–4096 procs.  Repo-scale: 8–64.  Asserted shapes: Pilgrim
plateaus (StirTurb earliest), ScalaTrace keeps growing and is larger;
the MPI call count grows linearly with P (plotted on the paper's
secondary axis) while Pilgrim's size does not follow it.
"""

from __future__ import annotations

import pytest

from conftest import once, save_results
from repro.analysis import fmt_kb, print_table, run_experiment

PROCS = (8, 16, 27, 48, 64, 125)

CONFIG = {
    "flash_sedov": dict(iters=60),
    "flash_cellular": dict(iters=40),
    "flash_stirturb": dict(iters=50),
}


@pytest.mark.parametrize("code", list(CONFIG))
def test_fig6_trace_size_vs_procs(code, benchmark):
    kw = CONFIG[code]
    # mirror the paper's setup: ScalaTrace could not trace MPI_Waitall in
    # Sedov/Cellular (it crashed; the wrapper was commented out)
    st_kw = {"record_waitall": code == "flash_stirturb"}

    def run():
        return [run_experiment(code, P, baseline=False,
                               scalatrace_kwargs=st_kw, **kw)
                for P in PROCS]

    rows = once(benchmark, run)
    print_table(
        f"Fig 6: {code} — trace size vs processes",
        ["procs", "MPI calls", "ScalaTrace", "Pilgrim", "uniq grammars"],
        [(r.nprocs, r.mpi_calls, fmt_kb(r.scalatrace_size),
          fmt_kb(r.pilgrim_size), r.n_unique_grammars) for r in rows],
        note="paper Fig 6a-c: Pilgrim plateaus; ScalaTrace tracks call "
             "count growth")
    save_results(f"fig6_procs_{code}", [vars(r) for r in rows])

    pilgrim = [r.pilgrim_size for r in rows]
    calls = [r.mpi_calls for r in rows]

    # calls grow ~linearly in P (weak-scaling style skeletons)
    assert calls[-1] > calls[0] * 4
    # Pilgrim wins at every P
    for r in rows:
        assert r.pilgrim_size < r.scalatrace_size, (code, r.nprocs)
    # Pilgrim's growth is decoupled from the call count.  Cellular is the
    # exception the paper shows too: below its plateau point (1024 procs
    # at paper scale) its pattern population is still being discovered,
    # so we only require slower-than-calls growth there.
    factor = 1.0 if code == "flash_cellular" else 0.4
    assert pilgrim[-1] / pilgrim[0] < factor * calls[-1] / calls[0]
    if code == "flash_stirturb":
        # plateaus at the 27 boundary classes: flat from 27 on
        by_p = {r.nprocs: r for r in rows}
        assert abs(by_p[125].pilgrim_size - by_p[27].pilgrim_size) < 256
        assert by_p[125].n_unique_grammars == 27


def test_fig6_plateau_points(benchmark):
    """The paper reports where each code's size stops growing (64 / 128 /
    1024 procs at their scale).  Measure the ordering at ours: StirTurb
    plateaus earliest, Cellular latest."""
    def run():
        out = {}
        for code in CONFIG:
            sizes = [run_experiment(code, P, scalatrace=False,
                                    baseline=False,
                                    **CONFIG[code]).pilgrim_size
                     for P in (16, 27, 48, 64)]  # plateau probe grid
            growth_tail = sizes[-1] / sizes[1]
            out[code] = growth_tail
        return out

    tails = once(benchmark, run)
    print_table(
        "Fig 6: late-stage growth factor (27 -> 64 procs)",
        ["code", "size(64)/size(27)"],
        [(k, f"{v:.2f}") for k, v in tails.items()],
        note="StirTurb flattest, Cellular still growing — the paper's "
             "plateau ordering")
    assert tails["flash_stirturb"] <= tails["flash_sedov"] + 0.05
    assert tails["flash_cellular"] >= tails["flash_stirturb"]
