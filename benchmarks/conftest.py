"""Shared helpers for the table/figure reproduction benchmarks.

Every benchmark module reproduces one table or figure from the paper's
evaluation (§4).  Conventions:

* each test runs the full experiment once inside ``benchmark.pedantic``
  (so ``pytest benchmarks/ --benchmark-only`` executes and times it),
* the paper-style rows are printed with ``-s``-visible output, and
* the *shape* claims (who wins, growth class, plateaus) are asserted —
  the absolute numbers are recorded in EXPERIMENTS.md, not asserted.

Process counts and iteration counts are scaled down from the paper's
(64–16K cores, hundreds of iterations) to laptop scale; the scaling map
is documented per experiment in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_results(name: str, payload) -> None:
    """Persist one experiment's rows for EXPERIMENTS.md bookkeeping."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(payload, fh, indent=1, default=str)


def once(benchmark, fn):
    """Run *fn* exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
