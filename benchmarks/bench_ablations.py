"""Ablations of the design choices DESIGN.md §5 calls out.

Not a paper figure — these benches quantify each optimization's
contribution, the way the paper argues for them in §2.2 / §3.4 / §3.5.
"""

from __future__ import annotations

import time

from conftest import once, save_results
from repro.analysis import fmt_kb, print_table, run_experiment
from repro.core import Sequitur


def test_ablation_relative_ranks(benchmark):
    """§3.4.2: without relative ranks a stencil's signature count grows
    with P and the grammars stop deduplicating."""
    def run():
        out = {}
        for P in (16, 64, 144):
            on = run_experiment("stencil2d", P, iters=15, scalatrace=False,
                                baseline=False)
            off = run_experiment("stencil2d", P, iters=15, scalatrace=False,
                                 baseline=False,
                                 pilgrim_kwargs={"relative_ranks": False})
            out[P] = (on, off)
        return out

    rows = once(benchmark, run)
    print_table(
        "Ablation: relative-rank encoding (2D stencil)",
        ["procs", "sigs on", "sigs off", "uniqG on", "uniqG off",
         "size on", "size off"],
        [(P, on.n_signatures, off.n_signatures, on.n_unique_grammars,
          off.n_unique_grammars, fmt_kb(on.pilgrim_size),
          fmt_kb(off.pilgrim_size)) for P, (on, off) in rows.items()],
        note="paper: 2 signatures instead of 2N for the 1-D pattern")
    save_results("ablation_relative", {
        P: {"on": vars(on), "off": vars(off)}
        for P, (on, off) in rows.items()})

    for P, (on, off) in rows.items():
        assert on.n_signatures < off.n_signatures
        assert on.n_unique_grammars == 9
        assert off.n_unique_grammars == P
    # and the gap widens with P: off grows, on is flat
    assert rows[144][1].n_signatures > rows[16][1].n_signatures * 3
    assert rows[144][0].n_signatures == rows[16][0].n_signatures


def test_ablation_runlength_sequitur(benchmark):
    """§2.2: exponents turn O(log N) loop rules into O(1) tokens; loop
    detection turns O(body) work per iteration into O(1) compares."""
    body = list(range(12))

    def run():
        out = {}
        for n in (100, 1000, 10000):
            seq = body * n
            s = Sequitur(loop_detection=True)
            t0 = time.perf_counter()
            for v in seq:
                s.append(v)
            t_fast = time.perf_counter() - t0
            s.flush()
            s2 = Sequitur(loop_detection=False)
            t0 = time.perf_counter()
            for v in seq:
                s2.append(v)
            t_slow = time.perf_counter() - t0
            s2.flush()
            out[n] = (s.n_tokens(), t_fast, s2.n_tokens(), t_slow)
        return out

    rows = once(benchmark, run)
    print_table(
        "Ablation: run-length Sequitur + loop detection (12-symbol body)",
        ["iterations", "tokens", "t loop-detect", "t plain", "speedup"],
        [(n, tk, f"{tf * 1e3:.1f}ms", f"{ts * 1e3:.1f}ms",
          f"{ts / tf:.1f}x") for n, (tk, tf, tk2, ts) in rows.items()])
    for n, (tk, tf, tk2, ts) in rows.items():
        assert tk == tk2          # identical grammars
        assert tk < 20            # O(1) in iteration count
    assert rows[10000][3] > rows[10000][1]  # loop detection pays off


def test_ablation_request_pools(benchmark):
    """§3.4.3: per-signature request pools keep the signature population
    independent of the non-deterministic completion order."""
    from repro.core import PilgrimTracer
    from repro.mpisim import SimMPI, datatypes as dt

    def prog(m):
        peer = 1 - m.rank
        buf = m.malloc(2048)
        reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                for t in range(4)]
        next_tag = 4
        for t in range(40):
            yield from m.send(buf + 1024, 1, dt.DOUBLE, dest=peer, tag=t)
        consumed = 0
        while consumed < 36:
            idx, _ = yield from m.waitany(reqs)
            consumed += 1
            reqs[idx] = m.irecv(buf, 1, dt.DOUBLE, source=peer,
                                tag=next_tag % 40)
            next_tag += 1
        yield from m.waitall(reqs)

    def run():
        def creation_sigs(per_sig):
            counts = set()
            for seed in range(5):
                tr = PilgrimTracer(keep_raw=True,
                                   per_signature_request_pools=per_sig)
                SimMPI(2, seed=seed, tracer=tr).run(prog)
                from repro.mpisim import funcs as F
                fid = F.FUNCS["MPI_Irecv"].fid
                sigs = frozenset(tr.csts[0].sigs[t] for t in tr.raw_terms[0]
                                 if tr.csts[0].sigs[t][0] == fid)
                counts.add(sigs)
            return counts

        return len(creation_sigs(True)), len(creation_sigs(False))

    stable, unstable = once(benchmark, run)
    print_table(
        "Ablation: per-signature request-id pools (sliding window, 5 seeds)",
        ["variant", "distinct irecv-signature sets across seeds"],
        [("per-signature pools", stable), ("single pool", unstable)],
        note="paper: one pool per signature makes ids independent of "
             "completion order")
    assert stable == 1
    assert unstable > 1


def test_ablation_cfg_dedup(benchmark):
    """§3.5.2: the identical-grammar check shrinks both the final trace
    and the final Sequitur pass's runtime."""
    def run():
        on = run_experiment("milc_su3_rmd", 256, steps=3, cg_iters=6,
                            scalatrace=False, baseline=False)
        off = run_experiment("milc_su3_rmd", 256, steps=3, cg_iters=6,
                             scalatrace=False, baseline=False,
                             pilgrim_kwargs={"cfg_dedup": False})
        return on, off

    on, off = once(benchmark, run)
    print_table(
        "Ablation: identical-grammar fast path (MILC, 256 procs)",
        ["variant", "uniq grammars", "trace size", "CFG merge time"],
        [("identity check on", on.n_unique_grammars,
          fmt_kb(on.pilgrim_size), f"{on.time_cfg_merge:.3f}s"),
         ("identity check off", off.n_unique_grammars,
          fmt_kb(off.pilgrim_size), f"{off.time_cfg_merge:.3f}s")])
    assert on.n_unique_grammars < off.n_unique_grammars
    assert on.pilgrim_size < off.pilgrim_size
    # merge *time* differences are sub-millisecond at repo scale and too
    # noisy to assert; the structural work saved (above) is the claim
