"""Fig 7 — execution time without tracing vs with Pilgrim vs ScalaTrace.

The paper measures wall-clock of FLASH runs on real clusters; here the
"application" is the simulator run and the tracers add real CPU work on
top.  Absolute overhead percentages do NOT transfer to this substrate —
the simulated app does no real computation, so any tracer looks
expensive relative to it (see EXPERIMENTS.md) — but the *relative*
patterns the paper explains causally do, and are asserted:

* ScalaTrace degrades far more on the AMR code (Cellular) than on the
  regular one (StirTurb): the refinement bursts feed its RSD tail
  matcher long irregular sequences (Fig 7e's mechanism);
* Pilgrim's per-call cost is uniform across codes (its work per call
  does not depend on pattern regularity), so its *relative* overhead
  ordering across codes stays within a small band.
"""

from __future__ import annotations


from conftest import once, save_results
from repro.analysis import fmt_time, print_table, run_experiment

CODES = {
    "flash_sedov": dict(iters=40),
    "flash_cellular": dict(iters=40),
    "flash_stirturb": dict(iters=40),
}
PROCS = (8, 27)


def test_fig7_execution_time(benchmark):
    def run():
        rows = []
        for code, kw in CODES.items():
            for P in PROCS:
                st_kw = {"record_waitall": code == "flash_stirturb"}
                rows.append(run_experiment(code, P,
                                           scalatrace_kwargs=st_kw, **kw))
        return rows

    rows = once(benchmark, run)
    print_table(
        "Fig 7: execution time (wall-clock of the simulated run)",
        ["code", "procs", "no tracing", "w/ Pilgrim", "w/ ScalaTrace",
         "Pilgrim ovh", "ScalaTrace ovh"],
        [(r.workload, r.nprocs, fmt_time(r.app_seconds),
          fmt_time(r.pilgrim_seconds), fmt_time(r.scalatrace_seconds),
          f"{100 * r.pilgrim_overhead:.0f}%",
          f"{100 * r.scalatrace_overhead:.0f}%") for r in rows],
        note="paper: Pilgrim max 21%/29%/4% on Sedov/Cellular/StirTurb; "
             "ScalaTrace several-x slower on the AMR codes")
    save_results("fig7_overhead", [vars(r) for r in rows])

    by = {(r.workload, r.nprocs): r for r in rows}
    for key, r in by.items():
        assert r.pilgrim_seconds >= r.app_seconds * 0.9  # sanity

    # The AMR-burst effect, measured where it is stable (CPU time inside
    # the tracer per event, not noisy end-to-end wall clock): ScalaTrace's
    # RSD matcher pays ~2x more per event on the irregular codes, whose
    # compressed traces stay two orders of magnitude longer per rank.
    # (With MPI_Waitall unrecorded — the paper had to comment the wrapper
    # out — the baseline also never observes request completions, so its
    # single id pool grows and loop folding degrades further.)
    from repro.core.backends import TracerOptions, make_tracer
    from repro.workloads import make as _make
    costs = {}
    entries = {}
    for code in ("flash_cellular", "flash_stirturb"):
        st = make_tracer("scalatrace", TracerOptions(
            extra={"record_waitall": code == "flash_stirturb"}))
        _make(code, 27, iters=40).run(seed=1, tracer=st)
        costs[code] = st.result.time_intra / max(st.result.recorded_calls, 1)
        entries[code] = sum(st.result.per_rank_entries) / 27
    print_table(
        "ScalaTrace RSD cost per recorded event (27 procs)",
        ["code", "us/event", "compressed entries/rank"],
        [(c, f"{1e6 * costs[c]:.1f}", f"{entries[c]:.0f}")
         for c in costs])
    assert costs["flash_cellular"] > 1.4 * costs["flash_stirturb"]
    assert entries["flash_cellular"] > 10 * entries["flash_stirturb"]

    # Pilgrim's per-call cost is code-independent: its tracing time per
    # MPI call varies by < 3x between the AMR and regular codes
    cell = by[("flash_cellular", 27)]
    stir = by[("flash_stirturb", 27)]
    cell_per_call = cell.time_intra / cell.mpi_calls
    stir_per_call = stir.time_intra / stir.mpi_calls
    assert max(cell_per_call, stir_per_call) < \
        3 * min(cell_per_call, stir_per_call)


def test_fig7_pilgrim_overhead_scales(benchmark):
    """Pilgrim's per-call cost is flat in P (intra-process compression is
    embarrassingly parallel in the paper; here: proportional work)."""
    def run():
        out = []
        for P in (8, 27, 64):
            r = run_experiment("flash_stirturb", P, iters=30,
                               scalatrace=False)
            out.append((P, r))
        return out

    rows = once(benchmark, run)
    print_table(
        "Pilgrim tracing cost per MPI call vs processes (StirTurb)",
        ["procs", "calls", "intra s", "us/call"],
        [(P, r.mpi_calls, f"{r.time_intra:.3f}",
          f"{1e6 * r.time_intra / r.mpi_calls:.1f}") for P, r in rows])
    per_call = [1e6 * r.time_intra / r.mpi_calls for _, r in rows]
    # per-call cost roughly constant (within 3x across 8x procs)
    assert max(per_call) < 3 * min(per_call)
