"""Table 1 — information collected by Cypress / ScalaTrace / Pilgrim.

Reproduces both halves of the table: the function-coverage counts (at
full-standard scale from the paper's own audit, and at simulated-API
scale measured from this repo's tracers) and the popular-parameter
matrix.  Also prints Table 2 (codes) and Table 3 (hardware → substitution)
as context.
"""

from __future__ import annotations

from conftest import once, save_results
from repro.analysis import print_table
from repro.core import PilgrimTracer
from repro.mpisim import SimMPI, datatypes as dt, funcs as F
from repro.scalatrace import SCALATRACE_RECORDED, UNRECORDED, ScalaTraceTracer
from repro.workloads import REGISTRY


def _measure_pilgrim_coverage() -> int:
    """Pilgrim-in-this-repo records every simulated function by
    construction: verify by driving one call of each registry entry
    through the tracer is impractical here, so count the registry the
    wrappers are generated from."""
    return len(F.FUNCS)


def test_table1_function_coverage(benchmark):
    def run():
        return {
            "standard_total": F.TOTAL_MPI40_FUNCS,
            "cypress_standard": F.CYPRESS_SUPPORTED,
            "scalatrace_standard": F.SCALATRACE_SUPPORTED,
            "pilgrim_standard": F.PILGRIM_SUPPORTED,
            "sim_total": len(F.FUNCS),
            "scalatrace_sim": len(SCALATRACE_RECORDED),
            "pilgrim_sim": _measure_pilgrim_coverage(),
        }

    cov = once(benchmark, run)

    print_table(
        "Table 1a: functions recorded (full MPI-4.0 standard, from paper)",
        ["tool", "functions"],
        [("total (MPI 4.0 RC)", cov["standard_total"]),
         ("Cypress", cov["cypress_standard"]),
         ("ScalaTrace", cov["scalatrace_standard"]),
         ("Pilgrim", cov["pilgrim_standard"])])
    print_table(
        "Table 1a': functions recorded (this repo's simulated API)",
        ["tool", "functions", "dropped"],
        [("simulated API total", cov["sim_total"], "-"),
         ("ScalaTrace baseline", cov["scalatrace_sim"],
          ", ".join(sorted(UNRECORDED))[:60] + "..."),
         ("Pilgrim reproduction", cov["pilgrim_sim"], "(none)")])
    print_table(
        "Table 1b: popular parameters",
        ["parameter", "Cypress", "ScalaTrace", "Pilgrim"],
        [("MPI_Status", "yes", "yes (src/tag)", "yes (src/tag)"),
         ("MPI_Request", "no", "yes (one pool)", "yes (per-sig pools)"),
         ("MPI_Comm", "intra", "intra and inter", "intra and inter"),
         ("MPI_Datatype", "size only", "yes", "yes (full recipe)"),
         ("src/dst/tag", "yes", "yes", "yes (relative)"),
         ("memory pointer", "no", "no", "yes (segment id + disp)")])
    print_table(
        "Table 2: evaluation codes (all implemented as skeletons)",
        ["type", "codes"],
        [("benchmark", "stencil2d, stencil3d, osu_* (9 programs)"),
         ("mini app", "npb_is, npb_mg, npb_cg, npb_lu, npb_bt, npb_sp"),
         ("production app", "flash_sedov, flash_cellular, flash_stirturb, "
                            "milc_su3_rmd")])
    print_table(
        "Table 3: hardware -> substitution",
        ["paper", "this repo"],
        [("Catalyst (Xeon E5, IB QDR)", "simulated alpha-beta network"),
         ("Theta (KNL, Aries dragonfly)", "same model, MILC runs"),
         ("64-16384 cores", "4-1024 simulated ranks (scaled)")])

    save_results("table1", cov)

    # shape assertions: the coverage ordering the paper reports
    assert cov["pilgrim_standard"] == cov["standard_total"]
    assert cov["cypress_standard"] < cov["scalatrace_standard"] \
        < cov["pilgrim_standard"]
    assert cov["scalatrace_sim"] < cov["sim_total"]
    assert cov["pilgrim_sim"] == cov["sim_total"]
    # the workload table must actually be backed by registered workloads
    for name in ("npb_is", "flash_cellular", "milc_su3_rmd", "stencil2d"):
        assert name in REGISTRY


def test_table1_pilgrim_records_everything_scalatrace_drops(benchmark):
    """Measured (not declared) coverage on a run exercising Test* calls."""
    def prog(m):
        peer = 1 - m.rank
        buf = m.malloc(256)
        reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                for t in range(3)]
        for t in range(3):
            yield from m.send(buf + 128, 1, dt.DOUBLE, dest=peer, tag=t)
        done = 0
        while done < 3:
            idxs, _ = yield from m.testsome(reqs)
            done += len(idxs)

    def run():
        pt = PilgrimTracer()
        SimMPI(2, seed=0, tracer=pt).run(prog)
        st = ScalaTraceTracer()
        SimMPI(2, seed=0, tracer=st).run(prog)
        return pt.result, st.result

    p, s = once(benchmark, run)
    print_table(
        "Measured coverage on a Testsome-driven run",
        ["tool", "calls seen", "calls recorded"],
        [("Pilgrim", p.total_calls, p.total_calls),
         ("ScalaTrace", s.total_calls, s.recorded_calls)])
    assert s.recorded_calls < s.total_calls    # Testsome dropped
    assert p.total_calls == s.total_calls      # Pilgrim keeps everything
