"""Fig 6 (d–f) — FLASH trace size vs iteration count at fixed processes.

Paper-scale: 4096 procs, 100–1000 iterations.  Repo-scale: 16 procs,
20–160 iterations.  Asserted shapes:

* StirTurb (f): constant size for Pilgrim regardless of iterations;
* Sedov (d): slow growth (the drifting min-dt source adds a new
  signature pair every ``drift_every`` iterations);
* Cellular (e): clear growth with the number of AMR refinements.
"""

from __future__ import annotations

import pytest

from conftest import once, save_results
from repro.analysis import fmt_kb, print_table, run_experiment

ITERS = (20, 40, 80, 120, 160)
NPROCS = 16


@pytest.mark.parametrize("code", ["flash_sedov", "flash_cellular",
                                  "flash_stirturb"])
def test_fig6_trace_size_vs_iterations(code, benchmark):
    st_kw = {"record_waitall": code == "flash_stirturb"}

    def run():
        return [run_experiment(code, NPROCS, iters=i, baseline=False,
                               scalatrace_kwargs=st_kw)
                for i in ITERS]

    rows = once(benchmark, run)
    print_table(
        f"Fig 6: {code} — trace size vs iterations ({NPROCS} procs)",
        ["iters", "MPI calls", "ScalaTrace", "Pilgrim"],
        [(r.params["iters"], r.mpi_calls, fmt_kb(r.scalatrace_size),
          fmt_kb(r.pilgrim_size)) for r in rows])
    save_results(f"fig6_iters_{code}", [vars(r) for r in rows])

    sizes = [r.pilgrim_size for r in rows]
    calls = [r.mpi_calls for r in rows]
    assert calls[-1] > calls[0] * 6  # the input grew linearly

    if code == "flash_stirturb":
        # Fig 6f: flat for Pilgrim (call-count varints only)
        assert max(sizes) - min(sizes) < 256
    elif code == "flash_sedov":
        # Fig 6d: grows, but far slower than the call count
        assert sizes[-1] > sizes[0]
        assert sizes[-1] / sizes[0] < 0.5 * calls[-1] / calls[0]
    else:
        # Fig 6e: refinements keep adding new communication patterns
        assert sizes[-1] > sizes[0] * 1.5
    # Pilgrim smaller than the baseline everywhere
    for r in rows:
        assert r.pilgrim_size < r.scalatrace_size


def test_fig6_sedov_growth_is_due_to_drift(benchmark):
    """Ablate the paper's explanation: with a non-drifting min-dt owner
    the Sedov trace stops growing."""
    def run():
        drifting = [run_experiment("flash_sedov", NPROCS, iters=i,
                                   scalatrace=False, baseline=False,
                                   drift_every=20).pilgrim_size
                    for i in (40, 160)]
        frozen = [run_experiment("flash_sedov", NPROCS, iters=i,
                                 scalatrace=False, baseline=False,
                                 drift_every=10**9).pilgrim_size
                  for i in (40, 160)]
        return drifting, frozen

    drifting, frozen = once(benchmark, run)
    print_table(
        "Sedov growth attribution",
        ["variant", "size @40 iters", "size @160 iters"],
        [("drifting min-dt owner", fmt_kb(drifting[0]), fmt_kb(drifting[1])),
         ("fixed owner", fmt_kb(frozen[0]), fmt_kb(frozen[1]))],
        note="paper: growth caused by new Send/Recv sources every few "
             "hundred iterations")
    assert drifting[1] > drifting[0]
    assert frozen[1] - frozen[0] < 128
