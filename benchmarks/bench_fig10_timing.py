"""Fig 10 — space for non-aggregated (lossy) timing, NPB, b = 1.2.

The paper stores per-call durations and intervals in two extra Sequitur
grammars and finds them far harder to compress than the call sequence:
near-linear growth in P, with SP/CG worst (486MB / 50MB at 1024 procs —
still 3.8x / 15.7x smaller than raw).  Asserted shapes:

* the timing grammars grow near-linearly with P, unlike the call-side
  sections ("inter-process compression for timing grammars is not as
  effective as for MPI calls");
* the compression ratio vs raw (8B per value per call) stays > 1.

One substrate difference is documented rather than asserted: in the
paper the *interval* grammar dominates; under our virtual-time model the
wait-time variability lands in call *durations* instead, so the ordering
flips.  The paper-relevant property — both streams are noisy and barely
share structure across ranks — holds either way.
"""

from __future__ import annotations

import pytest

from conftest import once, save_results
from repro.analysis import classify_growth, fmt_kb, print_table, run_experiment

PROCS = (8, 16, 32, 64, 128)
CODES = {"npb_is": 10, "npb_mg": 6, "npb_cg": 12, "npb_lu": 10}


@pytest.mark.parametrize("code", list(CODES))
def test_fig10_timing_grammar_sizes(code, benchmark):
    def run():
        rows = []
        for P in PROCS:
            r = run_experiment(code, P, iters=CODES[code],
                               scalatrace=False, baseline=False,
                               pilgrim_kwargs={"timing_mode": "lossy",
                                               "timing_base": 1.2})
            rows.append(r)
        return rows

    rows = once(benchmark, run)

    # re-run one config to pull the section split out of the tracer
    from repro.core import PilgrimTracer
    from repro.workloads import make
    details = []
    for P in PROCS:
        tr = PilgrimTracer(timing_mode="lossy", timing_base=1.2)
        make(code, P, iters=CODES[code]).run(seed=1, tracer=tr)
        details.append((P, tr.result))

    print_table(
        f"Fig 10: {code} — timing grammar sizes (b=1.2)",
        ["procs", "calls", "duration grammar", "interval grammar",
         "calls+CST sections"],
        [(P, r.total_calls,
          fmt_kb(r.section_sizes()["timing_duration"]),
          fmt_kb(r.section_sizes()["timing_interval"]),
          fmt_kb(r.section_sizes()["cst"] + r.section_sizes()["cfg"]))
         for P, r in details],
        note="paper: near-linear growth; interval >> duration; SP/CG "
             "worst at 486MB/50MB for 1024 procs")
    save_results(f"fig10_{code}", [
        {"procs": P, **r.section_sizes()} for P, r in details])

    for P, r in details:
        s = r.section_sizes()
        # compression still beats raw 8-byte-per-value streams
        raw = 8 * r.total_calls
        assert s["timing_duration"] + s["timing_interval"] < 2 * raw, \
            (code, P)

    xs = [P for P, _ in details]
    timing = [r.section_sizes()["timing_duration"]
              + r.section_sizes()["timing_interval"] for _, r in details]
    g_timing = classify_growth(xs, timing)
    # near-linear growth in P: the per-rank noise does not deduplicate
    assert g_timing in ("sublinear", "linear", "superlinear")
    assert timing[-1] > timing[0] * 3  # 8x procs -> >3x timing bytes


def test_fig10_compression_ratio_reported(benchmark):
    """The paper quotes 3.8x (SP) and 15.7x (CG) vs raw for the worst
    cases; compute ours for CG."""
    def run():
        from repro.core import PilgrimTracer
        from repro.workloads import make
        tr = PilgrimTracer(timing_mode="lossy", timing_base=1.2)
        make("npb_cg", 64, iters=12).run(seed=1, tracer=tr)
        return tr.result

    r = once(benchmark, run)
    s = r.section_sizes()
    raw_bytes = 8 * r.total_calls  # one f64 per call per stream
    ratio_d = raw_bytes / s["timing_duration"]
    ratio_i = raw_bytes / s["timing_interval"]
    print_table(
        "Timing compression ratio vs raw (CG, 64 procs)",
        ["stream", "raw", "compressed", "ratio"],
        [("durations", fmt_kb(raw_bytes), fmt_kb(s["timing_duration"]),
          f"{ratio_d:.1f}x"),
         ("intervals", fmt_kb(raw_bytes), fmt_kb(s["timing_interval"]),
          f"{ratio_i:.1f}x")],
        note="paper: 15.68x for CG durations+intervals at 1024 procs")
    assert ratio_d > 1.0 and ratio_i > 1.0
