"""Fig 5 — NPB trace sizes, Pilgrim vs ScalaTrace, six panels.

Paper-scale: 8–1024 processes, class C.  Repo-scale: 8–64 (SP/BT 16–100,
square counts), iteration counts trimmed.  The asserted shapes per panel:

* every panel: Pilgrim <= ScalaTrace at the largest P;
* IS: both grow superlinearly (P-length count arrays), ScalaTrace worse;
* MG/CG: ScalaTrace grows faster than Pilgrim;
* LU: BOTH roughly flat (the paper's exceptional panel), Pilgrim smaller;
* SP/BT: Pilgrim plateaus, ScalaTrace keeps growing.
"""

from __future__ import annotations

import pytest

from conftest import once, save_results
from repro.analysis import classify_growth, fmt_kb, print_table, run_experiment

PANELS = {
    "npb_lu": dict(procs=(8, 16, 32, 64, 128), iters=12),
    "npb_mg": dict(procs=(8, 16, 32, 64, 128), iters=8),
    "npb_is": dict(procs=(8, 16, 32, 64, 128), iters=10),
    "npb_cg": dict(procs=(8, 16, 32, 64, 128), iters=15),
    "npb_sp": dict(procs=(16, 36, 64, 100, 144), iters=16),
    "npb_bt": dict(procs=(16, 36, 64, 100, 144), iters=12),
}


def _panel(name):
    cfg = PANELS[name]
    rows = [run_experiment(name, P, iters=cfg["iters"], baseline=False)
            for P in cfg["procs"]]
    return rows


def _print_panel(name, rows):
    print_table(
        f"Fig 5 panel: {name.upper().replace('NPB_', '')}",
        ["procs", "ScalaTrace", "Pilgrim", "sigs", "uniq grammars"],
        [(r.nprocs, fmt_kb(r.scalatrace_size), fmt_kb(r.pilgrim_size),
          r.n_signatures, r.n_unique_grammars) for r in rows])
    xs = [r.nprocs for r in rows]
    print(f"  growth: scalatrace={classify_growth(xs, [r.scalatrace_size for r in rows])}, "
          f"pilgrim={classify_growth(xs, [r.pilgrim_size for r in rows])}")
    save_results(f"fig5_{name}", [vars(r) for r in rows])


@pytest.mark.parametrize("name", list(PANELS))
def test_fig5_panel(name, benchmark):
    rows = once(benchmark, lambda: _panel(name))
    _print_panel(name, rows)

    xs = [r.nprocs for r in rows]
    pilgrim = [r.pilgrim_size for r in rows]
    scala = [r.scalatrace_size for r in rows]

    # headline: Pilgrim smaller at scale, in every panel
    assert pilgrim[-1] < scala[-1], name

    g_p = classify_growth(xs, pilgrim)
    g_s = classify_growth(xs, scala)
    if name == "npb_lu":
        # the exceptional panel: both tools stay (near-)flat
        assert g_p in ("flat", "sublinear")
        assert g_s in ("flat", "sublinear")
    elif name == "npb_is":
        # worst case: P-length alltoallv count arrays
        assert g_s == "superlinear"
        assert scala[-1] / scala[0] >= pilgrim[-1] / pilgrim[0]
    else:
        # ScalaTrace grows at least as fast as Pilgrim and ends larger
        assert scala[-1] / scala[0] >= 0.8 * pilgrim[-1] / pilgrim[0]
        assert g_p in ("flat", "sublinear", "linear", "superlinear")


def test_fig5_pilgrim_preserves_more_information(benchmark):
    """While being smaller, Pilgrim records MORE: every function and the
    memory pointers ScalaTrace drops."""
    def run():
        from repro.core import PilgrimTracer, TraceDecoder
        from repro.scalatrace import ScalaTraceTracer
        from repro.workloads import make
        pt = PilgrimTracer()
        make("npb_mg", 16, iters=8).run(seed=1, tracer=pt)
        st = ScalaTraceTracer()
        make("npb_mg", 16, iters=8).run(seed=1, tracer=st)
        dec = TraceDecoder.from_bytes(pt.result.trace_bytes)
        return pt.result, st.result, dec.function_histogram()

    p, s, hist = once(benchmark, run)
    print_table(
        "information vs size (MG, 16 procs)",
        ["metric", "ScalaTrace", "Pilgrim"],
        [("calls recorded", s.recorded_calls, p.total_calls),
         ("trace size", fmt_kb(s.trace_size), fmt_kb(p.trace_size))])
    assert p.total_calls >= s.recorded_calls
    assert p.trace_size < s.trace_size
    assert sum(hist.values()) == p.total_calls


def test_fig5_related_work_ordering(benchmark):
    """§5's qualitative comparison, measured: Pilgrim < ScalaTrace <
    Recorder (sliding window: no loop structures, no long-range repeats,
    no inter-process compression)."""
    from repro.core import PilgrimTracer
    from repro.scalatrace import RecorderTracer, ScalaTraceTracer
    from repro.workloads import make

    def run():
        rows = []
        for P in (16, 32, 64):
            sizes = {}
            for label, cls in (("pilgrim", PilgrimTracer),
                               ("scalatrace", ScalaTraceTracer),
                               ("recorder", RecorderTracer)):
                tr = cls()
                make("npb_lu", P, iters=12).run(seed=1, tracer=tr)
                sizes[label] = tr.result.trace_size
            rows.append((P, sizes))
        return rows

    rows = once(benchmark, run)
    print_table(
        "Related-work ordering on LU (paper SS5)",
        ["procs", "Pilgrim", "ScalaTrace", "Recorder"],
        [(P, fmt_kb(s["pilgrim"]), fmt_kb(s["scalatrace"]),
          fmt_kb(s["recorder"])) for P, s in rows],
        note="Recorder: per-occurrence window backrefs, no cross-rank "
             "sharing -> linear in P and in iterations")
    save_results("fig5_related_work", [
        {"procs": P, **s} for P, s in rows])
    for P, s in rows:
        assert s["pilgrim"] < s["scalatrace"] < s["recorder"]
    assert rows[-1][1]["recorder"] > 3 * rows[0][1]["recorder"]
