"""Fig 8 — Pilgrim's overhead decomposition for the FLASH codes.

The paper splits tracing overhead into intra-process compression,
inter-process CST compression, and inter-process CFG compression, with
two findings we assert:

* the CST merge is a negligible sliver (0.2–0.4% in the paper);
* the CFG merge share grows with the number of unique grammars
  (StirTurb: 2 grammars, tiny share; Cellular: 498 grammars, dominant).

All tracers are constructed through the :mod:`repro.core.backends`
registry (via ``run_experiment``), and the sharded pipeline reports each
CST-reduction level as a ``merge.level.<k>`` phase, so the fine-grained
table below decomposes the inter-CST sliver level by level.
"""

from __future__ import annotations

from conftest import once, save_results
from repro.analysis import print_table, run_experiment

CODES = {
    "flash_sedov": dict(iters=40),
    "flash_cellular": dict(iters=40),
    "flash_stirturb": dict(iters=40),
}
# 48 ranks: StirTurb has plateaued at its 27 boundary classes while
# Cellular's per-rank partner sets keep every grammar unique — the
# unique-grammar contrast Fig 8 hinges on
NPROCS = 48


def test_fig8_overhead_decomposition(benchmark):
    # profile=True turns on the self-instrumentation registry: the same
    # PhaseProfiler that backs `repro trace --metrics` supplies these
    # numbers, so figure and CLI can never drift apart
    def run():
        return {code: run_experiment(code, NPROCS, scalatrace=False,
                                     baseline=False, profile=True, **kw)
                for code, kw in CODES.items()}

    rows = once(benchmark, run)

    def shares(r):
        total = r.time_intra + r.time_cst_merge + r.time_cfg_merge
        return (r.time_intra / total, r.time_cst_merge / total,
                r.time_cfg_merge / total)

    print_table(
        "Fig 8: Pilgrim overhead decomposition (27 procs)",
        ["code", "uniq grammars", "intra", "inter CST", "inter CFG"],
        [(code, r.n_unique_grammars,
          *(f"{100 * s:.1f}%" for s in shares(r)))
         for code, r in rows.items()],
        note="paper: CST merge 0.2-0.4%; CFG share grows with unique "
             "grammar count")
    phase_names = sorted({p for r in rows.values() for p in r.phases})
    print_table(
        "Fig 8 fine-grained: profiler phases (seconds)",
        ["code", *phase_names],
        [(code, *(f"{r.phases.get(p, 0.0):.4f}" for p in phase_names))
         for code, r in rows.items()],
        note="from the repro.obs phase profiler (same source as "
             "`repro stats`)")
    save_results("fig8_decomposition", {
        code: {"unique_grammars": r.n_unique_grammars,
               "intra": r.time_intra, "cst": r.time_cst_merge,
               "cfg": r.time_cfg_merge, "phases": r.phases}
        for code, r in rows.items()})

    for code, r in rows.items():
        # the fine-grained phases must account for the coarse totals:
        # per-call stages sum to the measured intra time, and the three
        # finalize phases are present
        percall = sum(r.phases.get(p, 0.0) for p in
                      ("encode", "cst", "sequitur", "timing", "mem"))
        assert percall >= 0.9 * r.time_intra, code
        assert "cfg_merge" in r.phases and "serialize" in r.phases, code
        # the sharded pipeline reports each reduction level of the CST
        # merge: ceil(log2 48) = 6 levels, all sub-slivers of cst_merge
        levels = [p for p in r.phases if p.startswith("merge.level.")]
        assert levels == [f"merge.level.{k}" for k in range(6)], code
        assert sum(r.phases[p] for p in levels) <= \
            r.phases["cst_merge"] + 1e-6, code

    for code, r in rows.items():
        intra, cst, cfg = shares(r)
        # CST merge is a tiny sliver everywhere
        assert cst < 0.1, code
        assert intra > 0.3, code

    # more unique grammars => larger CFG-merge share (the paper's Fig 8
    # ordering: StirTurb << Sedov < Cellular)
    cell, stir = rows["flash_cellular"], rows["flash_stirturb"]
    assert cell.n_unique_grammars > stir.n_unique_grammars
    assert shares(cell)[2] > shares(stir)[2]


def test_fig8_cfg_share_grows_with_unique_grammars(benchmark):
    """Directly sweep the unique-grammar count via the dedup ablation.
    At repo scale the merge times are sub-millisecond and noisy, so the
    asserted quantity is the *work* the identity check saves: the size of
    the merged grammar the final Sequitur pass must process."""
    def run():
        base = run_experiment("flash_stirturb", 64, iters=30,
                              scalatrace=False, baseline=False)
        nodedup = run_experiment("flash_stirturb", 64, iters=30,
                                 scalatrace=False, baseline=False,
                                 pilgrim_kwargs={"cfg_dedup": False})
        return base, nodedup

    base, nodedup = once(benchmark, run)
    print_table(
        "CFG merge work vs unique grammar count (StirTurb, 64 procs)",
        ["variant", "uniq grammars", "trace size", "CFG merge seconds"],
        [("dedup (27 classes)", base.n_unique_grammars,
          base.pilgrim_size, f"{base.time_cfg_merge:.4f}"),
         ("no dedup (64)", nodedup.n_unique_grammars,
          nodedup.pilgrim_size, f"{nodedup.time_cfg_merge:.4f}")],
        note="the identity check is what keeps the final Sequitur pass "
             "cheap (§3.5.2)")
    assert nodedup.n_unique_grammars == 64
    assert base.n_unique_grammars == 27
    assert base.pilgrim_size < nodedup.pilgrim_size
