"""Parallel tree-reduction merge — serial vs ``jobs=2`` vs ``jobs=4``.

The paper's inter-process CST/CFG compression is a ceil(log2 P) tree
reduction run *on the application's own processes* (§3.5, Fig 4), so its
wall time shrinks as P grows.  The repo's finalize runs on one machine;
the sharded pipeline recovers the parallelism with a process pool over
:func:`repro.core.shard.merge_shards`.  This benchmark measures the
finalize reduction at nprocs ∈ {64, 256, 1024} for jobs ∈ {1, 2, 4} and
asserts the property that makes ``--jobs`` safe: every jobs setting
produces **byte-identical** final traces.

At repo scale the shards are small, so pickling + process startup can
eat the win — the numbers recorded into ``benchmarks/results/`` are the
honest account of where the pool starts paying off, not an assertion
that it always does.
"""

from __future__ import annotations

import time

from conftest import once, save_results
from repro.analysis import fmt_time, print_table
from repro.core import TracePipeline
from repro.core.shard import RankCompressor
from repro.core.encoder import CommIdSpace
from repro.mpisim.comm import Comm, Group

PROCS = (64, 256, 1024)
JOBS = (1, 2, 4)
#: per-rank synthetic stream length: long enough that each shard carries
#: a real grammar, short enough that 1024 ranks stay benchmark-friendly
CALLS_PER_RANK = 120


def _synthetic_shards(nprocs: int) -> list:
    """Freeze one shard per rank from a synthetic SPMD-ish stream: a
    common iteration pattern plus a rank-class-dependent tail, so the
    reduction meets both duplicate and novel signatures at every level
    (the regime Fig 4's dedup argument is about)."""
    comm_space = CommIdSpace(nprocs)
    world = Comm(cid=0, group=Group(range(nprocs)), name="MPI_COMM_WORLD")
    shards = []
    for rank in range(nprocs):
        rc = RankCompressor(rank, comm_space)
        t = 0.0
        for i in range(CALLS_PER_RANK):
            peer = (rank + 1 + (i % (1 + rank % 4))) % nprocs
            args = {"comm": world, "dest": peer,
                    "count": 64 + 8 * (i % 3), "tag": i % 5}
            rc.observe("MPI_Send", args, t, t + 1e-6)
            t += 2e-6
        shards.append(rc.freeze())
    return shards


def test_parallel_merge_scaling(benchmark):
    def run():
        rows = []
        for nprocs in PROCS:
            shards = _synthetic_shards(nprocs)
            traces = {}
            timings = {}
            for jobs in JOBS:
                pipe = TracePipeline(jobs=jobs)
                t0 = time.perf_counter()
                final = pipe.reduce(list(shards))
                timings[jobs] = time.perf_counter() - t0
                traces[jobs] = pipe.serialize(final).trace_bytes
            rows.append((nprocs, timings, traces))
        return rows

    rows = once(benchmark, run)
    print_table(
        "parallel tree-reduction merge: finalize reduce wall time",
        ["nprocs", "shards", *(f"jobs={j}" for j in JOBS), "speedup x4"],
        [(nprocs, nprocs, *(fmt_time(t[j]) for j in JOBS),
          f"{t[1] / t[4]:.2f}x") for nprocs, t, _ in rows],
        note="byte-identical traces asserted across all jobs settings; "
             "pool pays off only once shards outweigh pickling costs")
    save_results("parallel_merge", [
        {"nprocs": nprocs, "calls_per_rank": CALLS_PER_RANK,
         "reduce_seconds": {str(j): t[j] for j in JOBS},
         "speedup_vs_serial": {str(j): t[1] / t[j] for j in JOBS},
         "trace_size": len(traces[1])}
        for nprocs, t, traces in rows])

    for nprocs, _, traces in rows:
        reference = traces[1]
        assert reference, nprocs
        for jobs in JOBS[1:]:
            assert traces[jobs] == reference, (nprocs, jobs)
