"""Fig 9 — MILC su3_rmd trace size, strong and weak scaling.

Paper-scale: 64–16384 procs; weak scaling flat at ~627KB with 27 unique
grammars at every P; strong scaling grows in stages (27 → 54 → 108
grammars) as the partition geometry changes.  Repo-scale: 16–625 procs;
the same two phenomena are asserted: weak scaling has a constant
unique-grammar count and flat size once every wrap class exists, strong
scaling changes signature populations at geometry thresholds.
"""

from __future__ import annotations

from conftest import once, save_results
from repro.analysis import fmt_kb, print_table, run_experiment

WEAK_PROCS = (16, 81, 256, 625, 1296)
STRONG_PROCS = (16, 81, 256, 625)
STRONG_DIMS = (32, 32, 32, 32)
KW = dict(steps=3, cg_iters=6)


def test_fig9_weak_scaling_flat(benchmark):
    def run():
        return [run_experiment("milc_su3_rmd", P, scalatrace=False,
                               baseline=False, **KW)
                for P in WEAK_PROCS]

    rows = once(benchmark, run)
    print_table(
        "Fig 9: MILC weak scaling (local lattice fixed)",
        ["procs", "MPI calls", "signatures", "uniq grammars", "size"],
        [(r.nprocs, r.mpi_calls, r.n_signatures, r.n_unique_grammars,
          fmt_kb(r.pilgrim_size)) for r in rows],
        note="paper: 27 unique grammars and 627KB regardless of P "
             "(16K procs); here the 4D wrap-class plateau is 81")
    save_results("fig9_weak", [vars(r) for r in rows])

    by_p = {r.nprocs: r for r in rows}
    # once every 4D wrap class exists (all dims >= 3), the population
    # freezes: same grammars, same signatures, flat size
    for P in (81, 256, 625, 1296):
        assert by_p[P].n_unique_grammars == 81
        assert by_p[P].n_signatures == by_p[81].n_signatures
    sizes = [by_p[P].pilgrim_size for P in (81, 256, 625, 1296)]
    assert max(sizes) - min(sizes) < 512
    # while the total call count grew ~linearly (16 -> 1296 ranks: 81x)
    assert by_p[1296].mpi_calls > by_p[81].mpi_calls * 12


def test_fig9_strong_scaling_stages(benchmark):
    def run():
        return [run_experiment("milc_su3_rmd", P, scalatrace=False,
                               baseline=False, global_dims=STRONG_DIMS,
                               **KW)
                for P in STRONG_PROCS]

    rows = once(benchmark, run)
    print_table(
        "Fig 9: MILC strong scaling (global lattice fixed at 32^4)",
        ["procs", "local lattice", "signatures", "uniq grammars", "size"],
        [(r.nprocs, "x".join(map(str, r.params.get("global_dims", ()))),
          r.n_signatures, r.n_unique_grammars, fmt_kb(r.pilgrim_size))
         for r in rows],
        note="paper: staged growth, 27 -> 54 -> 108 unique grammars as "
             "the partition geometry crosses thresholds")
    save_results("fig9_strong", [vars(r) for r in rows])

    # the partition geometry changes with P, so the signature population
    # (message sizes per direction) changes in stages
    sig_counts = [r.n_signatures for r in rows]
    assert len(set(sig_counts)) > 1
    by_p = {r.nprocs: r for r in rows}
    # staged unique-grammar growth at uneven geometries: 32^4 divides
    # evenly over 4^4=256 (fewer classes) but not over 5^4=625 (the
    # uneven split doubles the per-dimension class count) — the paper's
    # 27 -> 54 -> 108 stage mechanism
    assert by_p[625].n_unique_grammars > by_p[256].n_unique_grammars
    assert by_p[81].n_signatures > by_p[256].n_signatures
    # sizes stay in the hundreds-of-KB-at-16K regime, i.e. tiny here
    for r in rows:
        assert r.pilgrim_size < 64 * 1024
