"""§4.1 — stencil benchmarks: constant trace size beyond 9 (2D) / 27 (3D)
processes and independence from the iteration count."""

from __future__ import annotations

from conftest import once, save_results
from repro.analysis import fmt_kb, print_table, run_experiment

PROCS_2D = (4, 9, 16, 36, 64, 100, 256)
PROCS_3D = (8, 27, 64, 125, 216)
ITER_SWEEP = (10, 25, 50, 100, 200)


def test_stencil2d_constant_beyond_9_procs(benchmark):
    def run():
        return [run_experiment("stencil2d", P, iters=25, scalatrace=False,
                               baseline=False) for P in PROCS_2D]

    rows = once(benchmark, run)
    print_table(
        "2D 5-point stencil (non-periodic): trace size vs processes",
        ["procs", "MPI calls", "signatures", "unique grammars", "size"],
        [(r.nprocs, r.mpi_calls, r.n_signatures, r.n_unique_grammars,
          fmt_kb(r.pilgrim_size)) for r in rows],
        note="paper: all 9 patterns present from 3x3; size flat beyond 9")
    save_results("sec41_stencil2d", [vars(r) | {} for r in rows])

    by_p = {r.nprocs: r for r in rows}
    assert by_p[4].n_unique_grammars < 9
    for P in (9, 16, 36, 64, 100, 256):
        assert by_p[P].n_unique_grammars == 9
    # flat beyond 9 procs (varint jitter only)
    sizes = [by_p[P].pilgrim_size for P in (9, 16, 36, 64, 100, 256)]
    assert max(sizes) - min(sizes) < 64


def test_stencil3d_constant_beyond_27_procs(benchmark):
    def run():
        return [run_experiment("stencil3d", P, iters=15, scalatrace=False,
                               baseline=False) for P in PROCS_3D]

    rows = once(benchmark, run)
    print_table(
        "3D 7-point stencil (periodic): trace size vs processes",
        ["procs", "MPI calls", "signatures", "unique grammars", "size"],
        [(r.nprocs, r.mpi_calls, r.n_signatures, r.n_unique_grammars,
          fmt_kb(r.pilgrim_size)) for r in rows],
        note="paper: at most 27 patterns; size flat beyond 27")
    save_results("sec41_stencil3d", [vars(r) for r in rows])

    by_p = {r.nprocs: r for r in rows}
    for P in (27, 64, 125, 216):
        assert by_p[P].n_unique_grammars == 27
    sizes = [by_p[P].pilgrim_size for P in (27, 64, 125, 216)]
    assert max(sizes) - min(sizes) < 64


def test_stencil2d_independent_of_iterations(benchmark):
    def run():
        return [run_experiment("stencil2d", 16, iters=i, scalatrace=False,
                               baseline=False) for i in ITER_SWEEP]

    rows = once(benchmark, run)
    print_table(
        "2D stencil: trace size vs iterations (16 procs)",
        ["iters", "MPI calls", "size"],
        [(r.params["iters"], r.mpi_calls, fmt_kb(r.pilgrim_size))
         for r in rows],
        note="paper: constant space regardless of iteration count")
    sizes = [r.pilgrim_size for r in rows]
    # 20x the iterations, <200B drift (CST call-count varints only)
    assert max(sizes) - min(sizes) < 200
    calls = [r.mpi_calls for r in rows]
    assert calls[-1] > calls[0] * 15  # the input really did grow
