"""§6 (conclusion/future work) — replay and mini-app generation at scale.

Not a paper figure: the paper lists these as work in progress ("a
mini-app generator that could automatically generate a proxy MPI
program", "a converter ... into some existing trace formats").  This
bench validates the implementations at benchmark scale and records their
costs: replay wall time vs original run, mini-app source size vs trace
size, and the structural fixed point on every workload family.
"""

from __future__ import annotations

import time


from conftest import once, save_results
from repro.analysis import fmt_kb, fmt_time, print_table
from repro.core import PilgrimTracer
from repro.core.export import to_text, write_otf_text
from repro.replay import generate_miniapp, replay_trace, structurally_equal
from repro.workloads import make

CASES = [
    ("stencil2d", 64, dict(iters=25)),
    ("stencil2d_rma", 36, dict(iters=25)),
    ("npb_mg", 32, dict(iters=8)),
    ("npb_is", 16, dict(iters=10)),
    ("flash_sedov", 27, dict(iters=40)),
    ("milc_su3_rmd", 81, dict(steps=3, cg_iters=6)),
]


def test_sec6_replay_fixed_point_at_scale(benchmark):
    def run():
        rows = []
        for name, P, kw in CASES:
            tracer = PilgrimTracer()
            t0 = time.perf_counter()
            make(name, P, **kw).run(seed=1, tracer=tracer)
            t_orig = time.perf_counter() - t0
            blob = tracer.result.trace_bytes
            retrace = PilgrimTracer()
            t0 = time.perf_counter()
            replay_trace(blob, seed=7, tracer=retrace)
            t_replay = time.perf_counter() - t0
            ok = structurally_equal(blob, retrace.result.trace_bytes)
            rows.append((name, P, tracer.result.total_calls, len(blob),
                         t_orig, t_replay, ok))
        return rows

    rows = once(benchmark, run)
    print_table(
        "replay: fixed point + cost (trace -> replay -> re-trace)",
        ["workload", "procs", "calls", "trace", "orig run", "replay run",
         "fixed point"],
        [(n, P, c, fmt_kb(b), fmt_time(t1), fmt_time(t2),
          "OK" if ok else "FAILED")
         for n, P, c, b, t1, t2, ok in rows],
        note="replay completes non-blocking ops in the recorded order")
    save_results("sec6_replay", [
        {"workload": n, "procs": P, "calls": c, "trace": b,
         "orig_s": t1, "replay_s": t2, "fixed_point": ok}
        for n, P, c, b, t1, t2, ok in rows])
    assert all(ok for *_, ok in rows)
    # replay cost is the same order as the original traced run
    for n, P, c, b, t1, t2, ok in rows:
        assert t2 < 10 * t1 + 1.0, n


def test_sec6_miniapp_generation(benchmark):
    def run():
        out = []
        for name, P, kw in CASES[:4]:
            tracer = PilgrimTracer()
            make(name, P, **kw).run(seed=1, tracer=tracer)
            blob = tracer.result.trace_bytes
            src = generate_miniapp(blob)
            out.append((name, P, len(blob), len(src),
                        src.count("for _ in range(")))
        return out

    rows = once(benchmark, run)
    print_table(
        "mini-app generation (the grammar as control flow)",
        ["workload", "procs", "trace bytes", "source bytes",
         "loops recovered"],
        rows,
        note="source size tracks the grammar, not the call count")
    for name, P, blob_n, src_n, loops in rows:
        assert loops >= 1, name
        assert src_n < 200_000, name


def test_sec6_exporters(benchmark):
    def run():
        tracer = PilgrimTracer()
        make("npb_lu", 16, iters=8).run(seed=1, tracer=tracer)
        blob = tracer.result.trace_bytes
        text = to_text(blob)
        otf = write_otf_text(blob)
        return blob, text, otf, tracer.result.total_calls

    blob, text, otf, calls = once(benchmark, run)
    n_lines = sum(1 for ln in text.splitlines() if not ln.startswith("#"))
    n_enter = otf.count("ENTER ")
    print_table(
        "exporters: compressed trace -> flat formats",
        ["format", "size", "records"],
        [("pilgrim binary", fmt_kb(len(blob)), f"{calls} calls"),
         ("flat text", fmt_kb(len(text)), f"{n_lines} lines"),
         ("OTF-style events", fmt_kb(len(otf)), f"{n_enter} ENTERs")],
        note="the compressed form is 2-3 orders of magnitude smaller than "
             "what analysis tools consume")
    assert n_lines == calls
    assert n_enter == calls
    assert len(blob) * 50 < len(text)  # the compression is what the paper sells
