"""§4.1 — OSU micro-benchmarks: every program's trace compresses to a few
kilobytes, across processes and iterations."""

from __future__ import annotations

from conftest import once, save_results
from repro.analysis import fmt_kb, print_table, run_experiment

P2P = ("osu_latency", "osu_bw", "osu_bibw", "osu_multi_lat",
       "osu_put_latency", "osu_get_latency")
COLL = ("osu_allreduce", "osu_bcast", "osu_alltoall", "osu_allgather",
        "osu_reduce", "osu_barrier")


def test_osu_all_programs_few_kb(benchmark):
    def run():
        rows = []
        for name in P2P:
            rows.append(run_experiment(name, 4 if name == "osu_multi_lat"
                                       else 2, scalatrace=False,
                                       baseline=False))
        for name in COLL:
            rows.append(run_experiment(name, 16, scalatrace=False,
                                       baseline=False))
        return rows

    rows = once(benchmark, run)
    print_table(
        "OSU micro-benchmarks (full size sweep per program)",
        ["program", "procs", "MPI calls", "signatures", "size"],
        [(r.workload, r.nprocs, r.mpi_calls, r.n_signatures,
          fmt_kb(r.pilgrim_size)) for r in rows],
        note="paper: most programs compress to a few KB")
    save_results("sec41_osu", [vars(r) for r in rows])

    for r in rows:
        assert r.pilgrim_size < 64 * 1024, (r.workload, r.pilgrim_size)
    # collectives with symmetric arguments are the extreme case: sub-KB
    for r in rows:
        if r.workload in ("osu_barrier", "osu_alltoall", "osu_allgather",
                          "osu_allreduce"):
            assert r.pilgrim_size < 1024, r.workload


def test_osu_collectives_constant_in_procs(benchmark):
    def run():
        return {P: run_experiment("osu_allreduce", P, scalatrace=False,
                                  baseline=False)
                for P in (8, 32, 128)}

    rows = once(benchmark, run)
    print_table(
        "osu_allreduce: size vs processes (symmetric collective)",
        ["procs", "size"],
        [(P, fmt_kb(r.pilgrim_size)) for P, r in rows.items()],
        note="symmetric arguments -> one signature per size, any P")
    sizes = [r.pilgrim_size for r in rows.values()]
    assert max(sizes) - min(sizes) < 64
    assert all(r.n_unique_grammars == 1 for r in rows.values())
